// Jobs — the unit of work a chip serves.
//
// A Job bundles a program, its input streams and the cluster count the
// application designer requests (§1: "Application designers know the
// optimal amount of resources"). A JobOutcome records what actually
// happened: cycle breakdown, completion status and collected outputs.
// Both types are shared between the single-chip JobScheduler
// (scaling/job_scheduler.*) and the multi-chip farm (runtime/).
//
// run_job_on() is the per-chip execution core: configure + feed + run
// on an already-fused processor, without allocating or releasing it —
// callers own placement, so a batcher can amortise one configuration
// wormhole over many jobs. run_job() is the convenience wrapper that
// also allocates (with optional compaction) and releases.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "scaling/scaling_manager.hpp"

namespace vlsip::scaling {

struct Job {
  std::string name;
  arch::Program program;
  std::map<std::string, std::vector<arch::Word>> inputs;
  /// Tokens expected at every output before the job is complete.
  std::size_t expected_per_output = 1;
  /// Clusters the application designer requests (§1: "Application
  /// designers know the optimal amount of resources").
  std::size_t requested_clusters = 1;
  /// Per-job execution-cycle budget; 0 = use the caller's default.
  std::uint64_t max_cycles = 0;
};

/// What happened to a job, beyond the bare completed bit.
enum class JobStatus : std::uint8_t {
  kPending = 0,    ///< not yet run
  kCompleted,      ///< every output collected its expected tokens
  kDeadlocked,     ///< executor wait-for cycle, will never finish
  kTimedOut,       ///< hit the cycle budget
  kNoAllocation,   ///< the chip could not host requested_clusters
  kRejected,       ///< admission control refused it (queue full)
  kCancelled,      ///< cancelled or deadline expired before start
  kError,          ///< the run threw (invalid job, model violation)
};

const char* to_string(JobStatus status);

struct JobOutcome {
  std::string name;
  /// Farm-assigned admission id (0 outside the farm).
  std::uint64_t id = 0;
  bool completed = false;
  JobStatus status = JobStatus::kPending;
  /// Human-readable reason when not completed (rejection reason,
  /// deadlock report, ...). Empty on success.
  std::string detail;
  /// Timestamps in the scheduler's ticks: simulated cycles for the
  /// discrete-event JobScheduler, farm ticks (wall microseconds, or
  /// virtual cycles in deterministic mode) for the ChipFarm.
  std::uint64_t queued_at = 0;
  std::uint64_t started_at = 0;
  std::uint64_t finished_at = 0;
  std::size_t clusters_used = 0;
  std::uint64_t config_cycles = 0;
  std::uint64_t exec_cycles = 0;
  std::uint64_t faults = 0;
  /// Service attempts the farm made (1 = served first try; > 1 = the
  /// fault-tolerance path retried it; 0 = never reached a chip).
  std::uint32_t attempts = 0;
  /// Farm tick of the checkpoint the serving chip was restored from,
  /// when this job ran on a replacement chip resumed after a
  /// quarantine. 0 = the chip's history was uninterrupted.
  std::uint64_t resumed_from_cycle = 0;
  /// Femtojoules the serving chip's energy meter advanced by while this
  /// job ran (0 when the farm's energy accounting is off). Integer and
  /// derived from serialized counters, so deterministic per seed.
  std::uint64_t energy_fj = 0;
  /// Output tokens by port name, collected after a completed run.
  std::map<std::string, std::vector<arch::Word>> outputs;

  std::uint64_t turnaround() const { return finished_at - queued_at; }
};

/// Configures and executes `job` on the already-fused processor `proc`
/// (which must be inactive and sized by the caller). Does not allocate
/// or release: reusing one fused processor across several jobs is what
/// amortises the configuration wormhole. Fills status, cycle counts,
/// faults, clusters_used and outputs; timestamps stay 0 (the caller
/// owns the clock).
JobOutcome run_job_on(ScalingManager& manager, ProcId proc, const Job& job,
                      std::uint64_t default_max_cycles);

struct RunJobOptions {
  /// Allocation size; 0 = job.requested_clusters (static-CMP baselines
  /// pass their fixed processor size instead).
  std::size_t clusters = 0;
  /// Compact the chip when the first allocation attempt fails.
  bool compact_on_fragmentation = true;
  std::uint64_t default_max_cycles = 1u << 22;
};

/// Allocate (compacting on fragmentation if allowed) + run_job_on +
/// release. On allocation failure returns status kNoAllocation. If
/// `compacted_out` is non-null it is set when a compaction rescued the
/// allocation.
JobOutcome run_job(ScalingManager& manager, const Job& job,
                   const RunJobOptions& options = {},
                   bool* compacted_out = nullptr);

}  // namespace vlsip::scaling
