#include "scaling/job_scheduler.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace vlsip::scaling {

JobScheduler::JobScheduler(ScalingManager& manager, SchedulerConfig config)
    : manager_(manager), config_(config) {
  VLSIP_REQUIRE(config.fixed_clusters >= 1,
                "static processors need at least one cluster");
}

void JobScheduler::submit(Job job) {
  VLSIP_REQUIRE(!job.program.stream.empty(), "job has an empty program");
  VLSIP_REQUIRE(job.requested_clusters >= 1,
                "job must request at least one cluster");
  queue_.push_back(std::move(job));
}

bool JobScheduler::try_start(const Job& job, std::uint64_t now,
                             ScheduleResult& result) {
  const std::size_t clusters = config_.dynamic_sizing
                                   ? job.requested_clusters
                                   : config_.fixed_clusters;
  ProcId proc = manager_.allocate(clusters);
  if (proc == kNoProc && config_.compact_on_fragmentation) {
    if (manager_.compact() > 0) {
      ++result.compactions;
      proc = manager_.allocate(clusters);
    }
  }
  if (proc == kNoProc) return false;

  // Run the job on the fused processor; its cycle counts define the
  // completion event.
  Running r;
  r.proc = proc;
  r.outcome = run_job_on(manager_, proc, job, config_.max_cycles_per_job);
  r.outcome.queued_at = 0;  // FCFS batch: everything queued at time 0
  r.outcome.started_at = now;
  r.finish_at = now + r.outcome.config_cycles + r.outcome.exec_cycles;
  r.outcome.finished_at = r.finish_at;
  const std::uint64_t job_cycles =
      r.outcome.config_cycles + r.outcome.exec_cycles;
  result.occupied_cluster_cycles += job_cycles * clusters;
  result.useful_cluster_cycles +=
      job_cycles * std::min(clusters, job.requested_clusters);
  running_.push_back(std::move(r));
  return true;
}

ScheduleResult JobScheduler::run_all() {
  ScheduleResult result;
  std::uint64_t now = 0;

  while (!queue_.empty() || !running_.empty()) {
    // Start as many queued jobs as fit right now (FCFS, no skipping:
    // a blocked head blocks the queue, like the paper's in-order
    // configuration).
    while (!queue_.empty()) {
      if (!try_start(queue_.front(), now, result)) break;
      queue_.pop_front();
    }

    if (running_.empty()) {
      // Head job cannot ever start (requests more clusters than the
      // chip has free even when idle): fail it.
      VLSIP_INVARIANT(!queue_.empty(), "idle scheduler with empty queue");
      JobOutcome failed;
      failed.name = queue_.front().name;
      failed.completed = false;
      failed.status = JobStatus::kNoAllocation;
      failed.detail = "requests more clusters than the chip can ever free";
      failed.queued_at = 0;
      failed.started_at = now;
      failed.finished_at = now;
      result.outcomes.push_back(failed);
      ++result.failed;
      queue_.pop_front();
      continue;
    }

    // Advance to the earliest completion and release that processor.
    auto next = std::min_element(
        running_.begin(), running_.end(),
        [](const Running& a, const Running& b) {
          return a.finish_at < b.finish_at;
        });
    now = next->finish_at;
    manager_.release(next->proc);
    if (next->outcome.completed) {
      ++result.completed;
    } else {
      ++result.failed;
    }
    result.outcomes.push_back(next->outcome);
    running_.erase(next);
  }

  result.makespan = now;
  double turnaround_sum = 0.0;
  std::size_t counted = 0;
  for (const auto& o : result.outcomes) {
    if (o.completed) {
      turnaround_sum += static_cast<double>(o.turnaround());
      ++counted;
    }
  }
  result.mean_turnaround =
      counted == 0 ? 0.0 : turnaround_sum / static_cast<double>(counted);
  return result;
}

}  // namespace vlsip::scaling
