#include "scaling/state_machine.hpp"

#include "common/require.hpp"

namespace vlsip::scaling {

const char* state_name(ProcState s) {
  switch (s) {
    case ProcState::kRelease: return "release";
    case ProcState::kInactive: return "inactive";
    case ProcState::kActive: return "active";
    case ProcState::kSleep: return "sleep";
  }
  return "?";
}

void ProcessorStateMachine::move_to(ProcState next) {
  state_ = next;
  ++transitions_;
}

void ProcessorStateMachine::allocate() {
  VLSIP_REQUIRE(state_ == ProcState::kRelease,
                "allocate() only from release");
  move_to(ProcState::kInactive);
  read_protected_ = false;
  write_protected_ = false;
}

void ProcessorStateMachine::activate() {
  VLSIP_REQUIRE(state_ == ProcState::kInactive,
                "activate() only from inactive");
  read_protected_ = true;
  write_protected_ = true;
  move_to(ProcState::kActive);
}

void ProcessorStateMachine::deactivate() {
  VLSIP_REQUIRE(state_ == ProcState::kActive,
                "deactivate() only from active");
  read_protected_ = false;
  write_protected_ = false;
  move_to(ProcState::kInactive);
}

void ProcessorStateMachine::sleep(std::optional<std::uint64_t> wake_at) {
  VLSIP_REQUIRE(state_ == ProcState::kActive, "sleep() only from active");
  wake_at_ = wake_at;
  move_to(ProcState::kSleep);
}

void ProcessorStateMachine::wake() {
  VLSIP_REQUIRE(state_ == ProcState::kSleep, "wake() only from sleep");
  wake_at_.reset();
  move_to(ProcState::kActive);
}

void ProcessorStateMachine::release() {
  VLSIP_REQUIRE(state_ == ProcState::kInactive ||
                    state_ == ProcState::kActive,
                "release() only from inactive or active");
  read_protected_ = false;
  write_protected_ = false;
  wake_at_.reset();
  move_to(ProcState::kRelease);
}

void ProcessorStateMachine::fault() {
  VLSIP_REQUIRE(state_ != ProcState::kRelease,
                "fault() targets a live processor");
  ++faults_;
  read_protected_ = false;
  write_protected_ = false;
  wake_at_.reset();
  move_to(ProcState::kRelease);
}

bool ProcessorStateMachine::timer_expired(std::uint64_t now) const {
  return state_ == ProcState::kSleep && wake_at_.has_value() &&
         now >= *wake_at_;
}

}  // namespace vlsip::scaling
