// Chip-level job scheduling — the dynamic-CMP premise made measurable.
//
// §2: "one of the most important topics ... is resource management and
// scheduling. The CMP does not support resource management and
// scheduling on chip." The VLSI processor's answer is to size each
// processor to its application. This scheduler runs a queue of jobs
// (program + inputs + requested cluster count) over one chip:
//
//   * dynamic sizing (the paper's model): each job gets exactly the
//     clusters it asks for, fused on demand and released at completion;
//   * static sizing (the pre-fabricated CMP baseline, §1): the chip is
//     carved into fixed-size processors and every job must fit one —
//     small jobs strand resources, big jobs thrash in virtual hardware.
//
// Time is discrete-event: a started job's configuration + execution
// cycle counts come from the actual AP simulation; the chip clock jumps
// between completion events. Fragmentation is handled by compaction.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "scaling/job.hpp"
#include "scaling/scaling_manager.hpp"

namespace vlsip::scaling {

struct SchedulerConfig {
  /// true = dynamic CMP (fuse exactly what each job requests);
  /// false = static CMP baseline (fixed_clusters per processor).
  bool dynamic_sizing = true;
  std::size_t fixed_clusters = 4;
  /// Compact the chip when an allocation fails before giving up.
  bool compact_on_fragmentation = true;
  std::uint64_t max_cycles_per_job = 1u << 22;
};

struct ScheduleResult {
  std::uint64_t makespan = 0;
  /// Cluster-cycles *held* by jobs (cycles x allocated clusters).
  std::uint64_t occupied_cluster_cycles = 0;
  /// Cluster-cycles *needed* (cycles x requested clusters) — the useful
  /// share; an oversized static processor inflates occupancy, not this.
  std::uint64_t useful_cluster_cycles = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double mean_turnaround = 0.0;
  std::uint64_t compactions = 0;
  std::vector<JobOutcome> outcomes;

  /// Fraction of the chip's cluster-cycles held by jobs.
  double occupancy(std::size_t total_clusters) const {
    const double denom = static_cast<double>(makespan) *
                         static_cast<double>(total_clusters);
    return denom == 0.0
               ? 0.0
               : static_cast<double>(occupied_cluster_cycles) / denom;
  }
  /// Fraction of the chip's cluster-cycles doing requested work.
  double utilisation(std::size_t total_clusters) const {
    const double denom = static_cast<double>(makespan) *
                         static_cast<double>(total_clusters);
    return denom == 0.0
               ? 0.0
               : static_cast<double>(useful_cluster_cycles) / denom;
  }
};

class JobScheduler {
 public:
  JobScheduler(ScalingManager& manager, SchedulerConfig config = {});

  /// Enqueues a job (FCFS order).
  void submit(Job job);

  /// Runs every submitted job to completion (or failure) and returns
  /// the schedule metrics. The manager's chip is left fully released.
  ScheduleResult run_all();

 private:
  struct Running {
    ProcId proc;
    std::uint64_t finish_at;
    JobOutcome outcome;
  };

  /// Starts `job` now if resources allow; returns false when the chip
  /// cannot currently host it.
  bool try_start(const Job& job, std::uint64_t now, ScheduleResult& result);

  ScalingManager& manager_;
  SchedulerConfig config_;
  std::deque<Job> queue_;
  std::vector<Running> running_;
};

}  // namespace vlsip::scaling
