// Batch formation policy — amortising configuration wormholes.
//
// Fusing a processor costs a wormhole-routed configuration worm per
// allocation (§3.3); running k same-sized jobs back-to-back on one
// fused processor pays that worm once instead of k times (the AP's
// configure() replaces the previous datapath in place, and resident
// objects even stay cached, §2.4). The batcher therefore groups queued
// jobs by requested_clusters: a worker takes the head job plus up to
// max_jobs-1 later jobs requesting the same cluster count, preserving
// FCFS order within the batch and among the jobs left behind.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace vlsip::runtime {

struct PendingJob;

struct BatchPolicy {
  /// Ceiling on jobs per batch (>= 1).
  std::size_t max_jobs = 8;
  /// Group by requested_clusters so a batch can share one fused
  /// processor. Off = strict FCFS, one job per batch.
  bool group_by_clusters = true;
};

/// Forms the next batch from `queue` (which the caller must have
/// locked): always takes the head, then — when grouping — up to
/// max_jobs-1 further jobs with the head's requested_clusters. Taken
/// jobs are removed from `queue`.
std::vector<PendingJob> take_batch(std::deque<PendingJob>& queue,
                                   const BatchPolicy& policy);

}  // namespace vlsip::runtime
