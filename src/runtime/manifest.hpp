// Job manifests — declarative job streams for the chip farm.
//
// A manifest is a line-oriented text file, one job per line:
//
//   # comment
//   <name> <program> [clusters=N] [expect=N] [repeat=N] [max_cycles=N]
//          [<input>=v1,v2,...]...
//
// where <program> is a path to a .vdf source (compiled on the fly) or
// .vobj object file, resolved relative to the manifest's directory, or
// the builtin "@pipeline:N" — an N-stage linear pipeline generated in
// memory (arch::linear_pipeline_program), so benches and tests need no
// files on disk. Unrecognised key=value pairs are input feeds; values
// containing '.' feed floats, otherwise integers. repeat=K expands the
// line into K jobs named <name>#0..#K-1.
//
// synthetic_jobs() generates a seed-deterministic mixed workload
// (varying stage counts and cluster requests) for throughput benches
// and stress tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scaling/job.hpp"

namespace vlsip::runtime {

struct ManifestOptions {
  /// Directory relative program paths resolve against ("" = cwd).
  std::string base_dir;
};

/// Parses manifest text. Throws PreconditionError on malformed lines
/// (with the 1-based line number in the message).
std::vector<scaling::Job> parse_manifest(const std::string& text,
                                         const ManifestOptions& options = {});

/// Reads the file and parses it; base_dir defaults to the manifest's
/// own directory.
std::vector<scaling::Job> load_manifest(const std::string& path);

struct SyntheticSpec {
  std::size_t jobs = 64;
  int min_stages = 2;
  int max_stages = 8;
  std::size_t min_clusters = 1;
  std::size_t max_clusters = 4;
  /// Tokens fed to (and expected from) each job's pipeline.
  std::size_t tokens = 4;
  std::uint64_t seed = 1;
};

/// A seed-deterministic stream of linear-pipeline jobs with mixed
/// sizes — identical across runs and platforms (xoshiro256**).
std::vector<scaling::Job> synthetic_jobs(const SyntheticSpec& spec = {});

}  // namespace vlsip::runtime
