#include "runtime/manifest.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "arch/serialize.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "lang/compiler.hpp"

namespace vlsip::runtime {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  VLSIP_REQUIRE(static_cast<bool>(in), "cannot open file: " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

arch::Program resolve_program(const std::string& spec,
                              const std::string& base_dir) {
  constexpr const char* kPipeline = "@pipeline:";
  if (spec.rfind(kPipeline, 0) == 0) {
    const int stages = std::stoi(spec.substr(std::strlen(kPipeline)));
    return arch::linear_pipeline_program(stages);
  }
  std::string path = spec;
  if (!base_dir.empty() && path.front() != '/') {
    path = base_dir + "/" + path;
  }
  const auto text = read_file(path);
  if (ends_with(path, ".vobj") ||
      text.rfind("vlsip-object-code", 0) == 0) {
    return arch::from_text(text);
  }
  return lang::compile(text);
}

std::vector<arch::Word> parse_values(const std::string& list) {
  std::vector<arch::Word> words;
  std::stringstream vs(list);
  std::string tok;
  while (std::getline(vs, tok, ',')) {
    if (tok.find('.') != std::string::npos) {
      words.push_back(arch::make_word_f(std::stod(tok)));
    } else {
      words.push_back(arch::make_word_i(std::stoll(tok)));
    }
  }
  return words;
}

}  // namespace

std::vector<scaling::Job> parse_manifest(const std::string& text,
                                         const ManifestOptions& options) {
  std::vector<scaling::Job> jobs;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    if (name.empty() || name.front() == '#') continue;

    std::string program_spec;
    fields >> program_spec;
    VLSIP_REQUIRE(!program_spec.empty(),
                  "manifest line " + std::to_string(lineno) +
                      ": job needs a name and a program");

    scaling::Job job;
    job.name = name;
    job.program = resolve_program(program_spec, options.base_dir);
    std::size_t repeat = 1;
    std::string kv;
    while (fields >> kv) {
      const auto eq = kv.find('=');
      VLSIP_REQUIRE(eq != std::string::npos && eq > 0,
                    "manifest line " + std::to_string(lineno) +
                        ": expected key=value, got '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "clusters") {
        job.requested_clusters =
            static_cast<std::size_t>(std::stoull(value));
      } else if (key == "expect") {
        job.expected_per_output =
            static_cast<std::size_t>(std::stoull(value));
      } else if (key == "max_cycles") {
        job.max_cycles = std::stoull(value);
      } else if (key == "repeat") {
        repeat = static_cast<std::size_t>(std::stoull(value));
        VLSIP_REQUIRE(repeat >= 1,
                      "manifest line " + std::to_string(lineno) +
                          ": repeat must be >= 1");
      } else {
        VLSIP_REQUIRE(job.program.inputs.count(key) != 0,
                      "manifest line " + std::to_string(lineno) +
                          ": '" + key + "' is neither an option nor an "
                          "input of the program");
        job.inputs[key] = parse_values(value);
      }
    }

    if (repeat == 1) {
      jobs.push_back(std::move(job));
    } else {
      for (std::size_t k = 0; k < repeat; ++k) {
        scaling::Job copy = job;
        copy.name = job.name + "#" + std::to_string(k);
        jobs.push_back(std::move(copy));
      }
    }
  }
  return jobs;
}

std::vector<scaling::Job> load_manifest(const std::string& path) {
  ManifestOptions options;
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) options.base_dir = path.substr(0, slash);
  return parse_manifest(read_file(path), options);
}

std::vector<scaling::Job> synthetic_jobs(const SyntheticSpec& spec) {
  VLSIP_REQUIRE(spec.min_stages >= 1 && spec.max_stages >= spec.min_stages,
                "synthetic stage range is empty");
  VLSIP_REQUIRE(spec.min_clusters >= 1 &&
                    spec.max_clusters >= spec.min_clusters,
                "synthetic cluster range is empty");
  Xoshiro256 rng(spec.seed);
  std::vector<scaling::Job> jobs;
  jobs.reserve(spec.jobs);
  for (std::size_t i = 0; i < spec.jobs; ++i) {
    scaling::Job job;
    job.name = "syn" + std::to_string(i);
    const int stages = static_cast<int>(rng.uniform_range(
        spec.min_stages, spec.max_stages));
    job.program = arch::linear_pipeline_program(stages);
    job.requested_clusters = static_cast<std::size_t>(rng.uniform_range(
        static_cast<std::int64_t>(spec.min_clusters),
        static_cast<std::int64_t>(spec.max_clusters)));
    std::vector<arch::Word> feed;
    for (std::size_t t = 0; t < spec.tokens; ++t) {
      feed.push_back(arch::make_word_i(rng.uniform_range(-100, 100)));
    }
    job.inputs["in"] = std::move(feed);
    job.expected_per_output = spec.tokens;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace vlsip::runtime
