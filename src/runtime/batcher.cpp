#include "runtime/batcher.hpp"

#include "common/require.hpp"
#include "runtime/admission_queue.hpp"

namespace vlsip::runtime {

std::vector<PendingJob> take_batch(std::deque<PendingJob>& queue,
                                   const BatchPolicy& policy) {
  VLSIP_REQUIRE(policy.max_jobs >= 1, "batches hold at least one job");
  std::vector<PendingJob> batch;
  if (queue.empty()) return batch;

  batch.push_back(std::move(queue.front()));
  queue.pop_front();
  if (!policy.group_by_clusters) return batch;

  const std::size_t clusters = batch.front().job.requested_clusters;
  for (auto it = queue.begin();
       it != queue.end() && batch.size() < policy.max_jobs;) {
    if (it->job.requested_clusters == clusters) {
      batch.push_back(std::move(*it));
      it = queue.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

}  // namespace vlsip::runtime
