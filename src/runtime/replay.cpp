#include "runtime/replay.hpp"

#include "arch/serialize.hpp"

namespace vlsip::runtime {

void save_job(snapshot::Writer& w, const scaling::Job& job) {
  w.section("replay.job");
  w.str(job.name);
  arch::save_program(w, job.program);
  w.u64(job.inputs.size());
  for (const auto& [name, words] : job.inputs) {
    w.str(name);
    w.u64(words.size());
    for (const auto& word : words) w.u64(word.u);
  }
  w.u64(job.expected_per_output);
  w.u64(job.requested_clusters);
  w.u64(job.max_cycles);
}

scaling::Job restore_job(snapshot::Reader& r) {
  r.section("replay.job");
  scaling::Job job;
  job.name = r.str();
  job.program = arch::restore_program(r);
  const std::uint64_t n_inputs = r.count(16);
  for (std::uint64_t i = 0; i < n_inputs; ++i) {
    std::string name = r.str();
    std::vector<arch::Word> words(static_cast<std::size_t>(r.count(8)));
    for (auto& word : words) word.u = r.u64();
    job.inputs.emplace(std::move(name), std::move(words));
  }
  job.expected_per_output = static_cast<std::size_t>(r.u64());
  job.requested_clusters = static_cast<std::size_t>(r.u64());
  job.max_cycles = r.u64();
  return job;
}

void save_outcome(snapshot::Writer& w, const scaling::JobOutcome& outcome) {
  w.section("replay.outcome");
  w.str(outcome.name);
  w.u64(outcome.id);
  w.b(outcome.completed);
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.str(outcome.detail);
  w.u64(outcome.queued_at);
  w.u64(outcome.started_at);
  w.u64(outcome.finished_at);
  w.u64(outcome.clusters_used);
  w.u64(outcome.config_cycles);
  w.u64(outcome.exec_cycles);
  w.u64(outcome.faults);
  w.u32(outcome.attempts);
  w.u64(outcome.resumed_from_cycle);
  w.u64(outcome.energy_fj);
  w.u64(outcome.outputs.size());
  for (const auto& [name, words] : outcome.outputs) {
    w.str(name);
    w.u64(words.size());
    for (const auto& word : words) w.u64(word.u);
  }
}

scaling::JobOutcome restore_outcome(snapshot::Reader& r) {
  r.section("replay.outcome");
  scaling::JobOutcome outcome;
  outcome.name = r.str();
  outcome.id = r.u64();
  outcome.completed = r.b();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(scaling::JobStatus::kError)) {
    throw snapshot::SnapshotError("outcome has unknown job status " +
                                  std::to_string(status));
  }
  outcome.status = static_cast<scaling::JobStatus>(status);
  outcome.detail = r.str();
  outcome.queued_at = r.u64();
  outcome.started_at = r.u64();
  outcome.finished_at = r.u64();
  outcome.clusters_used = static_cast<std::size_t>(r.u64());
  outcome.config_cycles = r.u64();
  outcome.exec_cycles = r.u64();
  outcome.faults = r.u64();
  outcome.attempts = r.u32();
  outcome.resumed_from_cycle = r.u64();
  outcome.energy_fj = r.u64();
  const std::uint64_t n_outputs = r.count(16);
  for (std::uint64_t i = 0; i < n_outputs; ++i) {
    std::string name = r.str();
    std::vector<arch::Word> words(static_cast<std::size_t>(r.count(8)));
    for (auto& word : words) word.u = r.u64();
    outcome.outputs.emplace(std::move(name), std::move(words));
  }
  return outcome;
}

void ReplayLog::save(snapshot::Writer& w) const {
  w.section("replay.log");
  w.u64(jobs.size());
  for (const auto& job : jobs) save_job(w, job);
  w.u64(next_job);
  w.u64(checkpoint_tick);
}

void ReplayLog::restore(snapshot::Reader& r) {
  r.section("replay.log");
  jobs.clear();
  const std::uint64_t n = r.count(32);
  jobs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) jobs.push_back(restore_job(r));
  next_job = static_cast<std::size_t>(r.u64());
  checkpoint_tick = r.u64();
  if (next_job > jobs.size()) {
    throw snapshot::SnapshotError("replay log cursor is past its jobs");
  }
}

std::vector<scaling::JobOutcome> replay_from(
    core::VlsiProcessor& chip, const snapshot::Snapshot& checkpoint,
    const ReplayLog& log, const ReplayOptions& options) {
  {
    snapshot::Reader r(checkpoint);
    chip.restore(r);
  }
  scaling::RunJobOptions run_options;
  run_options.compact_on_fragmentation = options.compact_on_fragmentation;
  run_options.default_max_cycles = options.default_max_cycles;
  std::vector<scaling::JobOutcome> outcomes;
  outcomes.reserve(log.jobs.size() - log.next_job);
  for (std::size_t i = log.next_job; i < log.jobs.size(); ++i) {
    scaling::JobOutcome outcome =
        scaling::run_job(chip.manager(), log.jobs[i], run_options);
    outcome.resumed_from_cycle = log.checkpoint_tick;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace vlsip::runtime
