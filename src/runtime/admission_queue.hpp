// Bounded thread-safe admission queue — the farm's front door.
//
// Producers submit PendingJobs; worker threads pop *batches* (grouping
// policy in runtime/batcher.*). The queue is bounded: when full, the
// caller chooses backpressure semantics per call — try_push() rejects
// with a reason (load shedding), push_wait() blocks until space frees
// (throttling). close() stops admission and lets workers drain what
// remains; pause() freezes consumption so tests can stage deterministic
// queue states.
//
// In-flight accounting (one count per popped batch, finished via
// finish_batch()) lets wait_idle() implement ChipFarm::drain() without
// a race between "queue looks empty" and "worker still running".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/batcher.hpp"
#include "scaling/job.hpp"

namespace vlsip::runtime {

/// One admitted job waiting for a worker: the job itself plus its
/// completion plumbing (promise/callback) and admission bookkeeping.
struct PendingJob {
  std::uint64_t id = 0;
  scaling::Job job;
  /// Absolute farm tick after which the job is cancelled instead of
  /// started; 0 = no deadline.
  std::uint64_t deadline = 0;
  std::uint64_t queued_at = 0;
  /// Service attempts so far (fault-tolerance retries increment this).
  std::uint32_t attempts = 0;
  /// Earliest farm tick the job may be served at (retry backoff);
  /// 0 = immediately.
  std::uint64_t not_before = 0;
  std::promise<scaling::JobOutcome> promise;
  std::function<void(const scaling::JobOutcome&)> on_complete;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Non-blocking admission. Returns false (and fills `reason`, if
  /// given) when the queue is full or closed.
  bool try_push(PendingJob&& job, std::string* reason = nullptr);

  /// Blocking admission: waits until space frees. Returns false only
  /// when the queue is closed.
  bool push_wait(PendingJob&& job);

  /// Re-admits a job a worker could not serve (fault-tolerance retry).
  /// Ignores capacity and the closed flag — a retried job was already
  /// admitted once and its promise must still resolve, so it can never
  /// be shed or stranded by shutdown. Goes to the back of the queue.
  void requeue(PendingJob&& job);

  /// Pops the next batch under `policy` (blocks while empty or paused).
  /// An empty result means the queue is closed and fully drained — the
  /// worker should exit. A non-empty result counts as one in-flight
  /// batch until finish_batch().
  std::vector<PendingJob> pop_batch(const BatchPolicy& policy);

  /// Marks one popped batch complete (wakes wait_idle()).
  void finish_batch();

  /// Removes a still-queued job and hands its PendingJob back to the
  /// caller (to fulfil the promise with a cancelled outcome). Returns
  /// false if the job already left the queue.
  bool cancel(std::uint64_t id, PendingJob& out);

  /// Freezes/unfreezes consumption; admission is unaffected.
  void set_paused(bool paused);

  /// Stops admission; pop_batch() drains the remainder then returns
  /// empty. Also unpauses, so close() always terminates workers.
  void close();

  /// Blocks until the queue is empty and no batch is in flight. Resume
  /// a paused queue first, or this waits forever on pending jobs.
  void wait_idle();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<PendingJob> queue_;
  std::size_t in_flight_batches_ = 0;
  bool paused_ = false;
  bool closed_ = false;
};

}  // namespace vlsip::runtime
