// FarmConfigBuilder — the one construction surface for a chip farm.
//
// The runtime half of the builder pair (core/builder.hpp builds the
// chip template): FarmConfig + FaultToleranceConfig + BatchPolicy used
// to be three nested structs whose interactions carried footguns the
// types did not express — deterministic mode silently ignores
// queue_capacity, a retry budget without fault tolerance enabled is
// dead config, a fault plan without quarantine never heals. The builder
// names the intents (deterministic(), fault_tolerance(),
// checkpoint_every()) and validates the combination in build().
// Aggregate-initialising FarmConfig directly remains the legacy path.
//
//   auto farm_cfg = runtime::FarmConfigBuilder()
//                       .deterministic()
//                       .chip(core::ChipConfigBuilder().grid(4, 4).build())
//                       .fault_tolerance(plan)
//                       .checkpoint_every(2)
//                       .build();
//   runtime::ChipFarm farm(farm_cfg);
#pragma once

#include <cstdint>
#include <utility>

#include "core/builder.hpp"
#include "runtime/chip_farm.hpp"

namespace vlsip::runtime {

class FarmConfigBuilder {
 public:
  FarmConfigBuilder& workers(std::size_t n) {
    config_.workers = n;
    return *this;
  }

  /// Admission queue depth and full-queue backpressure (block the
  /// submitter vs reject with a reason).
  FarmConfigBuilder& queue(std::size_t capacity, bool block_when_full = false) {
    config_.queue_capacity = capacity;
    config_.block_when_full = block_when_full;
    return *this;
  }

  /// One worker on a virtual cycle clock; bit-identical outcomes.
  FarmConfigBuilder& deterministic(bool on = true) {
    config_.deterministic = on;
    return *this;
  }

  FarmConfigBuilder& batch(std::size_t max_jobs,
                           bool group_by_clusters = true) {
    config_.batch.max_jobs = max_jobs;
    config_.batch.group_by_clusters = group_by_clusters;
    return *this;
  }

  FarmConfigBuilder& default_max_cycles(std::uint64_t cycles) {
    config_.default_max_cycles = cycles;
    return *this;
  }

  /// Emulated silicon clock (threaded mode pacing); 0 = unpaced.
  FarmConfigBuilder& chip_hz(double hz) {
    config_.chip_hz = hz;
    return *this;
  }

  FarmConfigBuilder& start_paused(bool on = true) {
    config_.start_paused = on;
    return *this;
  }

  FarmConfigBuilder& keep_outcome_log(bool on) {
    config_.keep_outcome_log = on;
    return *this;
  }

  /// The chip template every worker slot is built from.
  FarmConfigBuilder& chip(core::ChipConfig chip_config) {
    config_.chip = std::move(chip_config);
    return *this;
  }

  /// Enables the self-healing path with `plan` as the injected fault
  /// stream (sorted by the farm at construction).
  FarmConfigBuilder& fault_tolerance(fault::FaultPlan plan) {
    config_.fault_tolerance.enabled = true;
    config_.fault_tolerance.plan = std::move(plan);
    return *this;
  }

  FarmConfigBuilder& retries(std::size_t max_retries,
                             std::uint64_t backoff_ticks = 64) {
    config_.fault_tolerance.max_retries = max_retries;
    config_.fault_tolerance.retry_backoff_ticks = backoff_ticks;
    return *this;
  }

  /// Consecutive faulty services before a chip is pulled (0 = never).
  FarmConfigBuilder& quarantine_after(std::size_t services) {
    config_.fault_tolerance.quarantine_after = services;
    return *this;
  }

  FarmConfigBuilder& compact_on_health_check(bool on) {
    config_.fault_tolerance.compact_on_health_check = on;
    return *this;
  }

  /// Checkpoint each worker chip every N batches; quarantines then
  /// restore the replacement from the last checkpoint.
  FarmConfigBuilder& checkpoint_every(std::size_t batches) {
    config_.checkpoint_every_batches = batches;
    return *this;
  }

  /// Passthrough under the FarmConfig field's exact name, so callers
  /// mapping external config (the vlsipd worker daemon's
  /// --checkpoint-every-batches flag) onto the builder don't need a
  /// spelling table. Identical to checkpoint_every().
  FarmConfigBuilder& checkpoint_every_batches(std::size_t batches) {
    return checkpoint_every(batches);
  }

  /// Incremental checkpoints: deltas against the previous checkpoint
  /// instead of a full snapshot each time (FarmConfig field docs).
  FarmConfigBuilder& incremental_checkpoints(bool on) {
    config_.incremental_checkpoints = on;
    return *this;
  }

  /// Full keyframe after this many consecutive deltas (chain bound).
  FarmConfigBuilder& checkpoint_keyframe_every(std::size_t deltas) {
    config_.checkpoint_keyframe_every = deltas;
    return *this;
  }

  /// Hard cap on total chain length (keyframe + deltas): a checkpoint
  /// that would push the chain past `links` is forced to a fresh
  /// keyframe instead. 0 = uncapped (keyframe cadence alone bounds the
  /// chain).
  FarmConfigBuilder& checkpoint_chain_max_links(std::size_t links) {
    config_.checkpoint_chain_max_links = links;
    return *this;
  }

  /// Energy-aware scheduling: enables per-chip energy accounting (the
  /// chip template's EnergySpec is forced on) and the per-chip
  /// DvsGovernor, throttling toward `budget_fj_per_job` femtojoules
  /// per served job. 0 = meter but never throttle down.
  FarmConfigBuilder& dvs(std::uint64_t budget_fj_per_job) {
    config_.dvs.enabled = true;
    config_.dvs.energy_budget_fj_per_job = budget_fj_per_job;
    return *this;
  }

  /// Alias for dvs() under the config field's exact name, for callers
  /// mapping external flags (vlsipc's --energy-budget).
  FarmConfigBuilder& energy_budget(std::uint64_t budget_fj_per_job) {
    return dvs(budget_fj_per_job);
  }

  /// Step the DVS ladder back up when farm p99 latency exceeds this
  /// many ticks — latency beats energy on ties. 0 = off.
  FarmConfigBuilder& p99_guardrail(std::uint64_t ticks) {
    config_.dvs.p99_guardrail_ticks = ticks;
    return *this;
  }

  /// Borrowed structured-event sink for farm-level events.
  FarmConfigBuilder& trace_sink(obs::TraceSink* sink) {
    config_.trace = sink;
    return *this;
  }

  FarmConfig build() const {
    const Status s = validate();
    VLSIP_REQUIRE(s.ok(), s.to_string());
    return config_;
  }

  StatusOr<FarmConfig> try_build() const {
    const Status s = validate();
    if (!s.ok()) return s;
    return config_;
  }

  /// The config as accumulated so far, unvalidated.
  FarmConfig& raw() { return config_; }

 private:
  Status validate() const {
    if (config_.workers < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "the farm needs at least one worker");
    }
    if (config_.batch.max_jobs < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "batches must hold at least one job");
    }
    if (!config_.deterministic && config_.queue_capacity < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "threaded mode needs a non-empty admission queue");
    }
    if (config_.incremental_checkpoints &&
        config_.checkpoint_every_batches == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "incremental_checkpoints without a checkpoint cadence "
                    "is dead config — set checkpoint_every(N)");
    }
    if (config_.incremental_checkpoints &&
        config_.checkpoint_keyframe_every < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "checkpoint_keyframe_every must be >= 1 (every chain "
                    "needs a keyframe)");
    }
    if (config_.checkpoint_chain_max_links > 0 &&
        !config_.incremental_checkpoints) {
      return Status(StatusCode::kInvalidArgument,
                    "checkpoint_chain_max_links without "
                    "incremental_checkpoints is dead config — full "
                    "snapshots have no chain to cap");
    }
    if (config_.dvs.p99_guardrail_ticks > 0 && !config_.dvs.enabled) {
      return Status(StatusCode::kInvalidArgument,
                    "a p99 guardrail without dvs() is dead config — the "
                    "governor would never run");
    }
    if (!config_.fault_tolerance.enabled &&
        !config_.fault_tolerance.plan.events.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "a fault plan without fault_tolerance() is dead "
                    "config — it would never fire");
    }
    // The embedded chip template obeys the chip builder's rules.
    core::ChipConfigBuilder chip_builder;
    chip_builder.raw() = config_.chip;
    const auto chip = chip_builder.try_build();
    return chip.status();
  }

  FarmConfig config_;
};

}  // namespace vlsip::runtime
