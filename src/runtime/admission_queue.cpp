#include "runtime/admission_queue.hpp"

#include "common/require.hpp"

namespace vlsip::runtime {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  VLSIP_REQUIRE(capacity >= 1, "admission queue needs capacity >= 1");
}

bool AdmissionQueue::try_push(PendingJob&& job, std::string* reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      if (reason != nullptr) *reason = "queue closed";
      return false;
    }
    if (queue_.size() >= capacity_) {
      if (reason != nullptr) {
        *reason = "queue full (" + std::to_string(capacity_) + " pending)";
      }
      return false;
    }
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
  return true;
}

bool AdmissionQueue::push_wait(PendingJob&& job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
  return true;
}

void AdmissionQueue::requeue(PendingJob&& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
}

std::vector<PendingJob> AdmissionQueue::pop_batch(const BatchPolicy& policy) {
  std::vector<PendingJob> batch;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] {
      return (!paused_ && !queue_.empty()) || (closed_ && queue_.empty());
    });
    if (queue_.empty()) return batch;  // closed and drained
    batch = take_batch(queue_, policy);
    ++in_flight_batches_;
  }
  // Space freed: wake every blocked producer that now fits.
  not_full_.notify_all();
  return batch;
}

void AdmissionQueue::finish_batch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    VLSIP_INVARIANT(in_flight_batches_ > 0,
                    "finish_batch without a popped batch");
    --in_flight_batches_;
  }
  idle_.notify_all();
}

bool AdmissionQueue::cancel(std::uint64_t id, PendingJob& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      out = std::move(*it);
      queue_.erase(it);
      not_full_.notify_one();
      idle_.notify_all();
      return true;
    }
  }
  return false;
}

void AdmissionQueue::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = paused;
  }
  if (!paused) not_empty_.notify_all();
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    paused_ = false;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void AdmissionQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock,
             [&] { return queue_.empty() && in_flight_batches_ == 0; });
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace vlsip::runtime
