// DvsGovernor — per-chip dynamic voltage/frequency scaling policy.
//
// The farm's old `chip_hz` knob paced every chip at one fixed emulated
// clock. The governor generalises it: each worker chip sits on a DVS
// ladder (cost::DvsPoint operating points, owned by the chip's
// EnergySpec so chip and governor cannot disagree), and after every
// batch the governor picks the ladder level from two assertion-style
// guardrails (grounding: the Assertion-Based DVS design-exploration
// paper, PAPERS.md):
//
//   * energy budget: when the mean energy per served job since the
//     last decision exceeds `energy_budget_fj_per_job`, throttle one
//     level down (dynamic energy per event scales ~V², so a step down
//     the default ladder cuts joules-per-job 15–40% at the cost of a
//     proportionally slower clock — latency the p99 tracks honestly);
//   * p99 guardrail: when the farm's p99 latency exceeds
//     `p99_guardrail_ticks`, step one level up regardless of energy —
//     latency wins ties.
//
// When comfortably under budget the governor probes back up: it steps
// to the faster level if the mean job, re-priced at that level's
// voltage (scaled by the V² ratio with a 5% headroom margin), would
// still fit the budget. The policy is a pure function of integer
// counters, so deterministic mode yields bit-identical level sequences
// per seed.
#pragma once

#include <cstdint>

#include "costmodel/energy.hpp"

namespace vlsip::runtime {

struct DvsConfig {
  /// Master switch: enables per-chip energy accounting in the farm
  /// (forcing FarmConfig::chip.energy.enabled) and governor stepping.
  bool enabled = false;
  /// Target mean energy per served job, femtojoules. 0 = never
  /// throttle down (the chip stays at its initial level unless the
  /// p99 guardrail pushes it up).
  std::uint64_t energy_budget_fj_per_job = 0;
  /// Step back up when farm p99 latency exceeds this many ticks
  /// (virtual cycles in deterministic mode, microseconds threaded).
  /// 0 = off.
  std::uint64_t p99_guardrail_ticks = 0;
};

class DvsGovernor {
 public:
  DvsGovernor() = default;
  DvsGovernor(DvsConfig config, const cost::EnergyModel* model)
      : config_(config), model_(model) {}

  /// Post-batch decision. `jobs_total` / `energy_total_fj` are the
  /// worker's lifetime served-job count and chip energy meter (the
  /// governor windows them itself); `p99_ticks` is the farm's current
  /// p99 latency. Returns the ladder level the chip should run at
  /// (possibly `current` unchanged). At most one step per call —
  /// ladder traversal is gradual by design.
  std::size_t decide(std::size_t current, std::uint64_t jobs_total,
                     std::uint64_t energy_total_fj, std::uint64_t p99_ticks) {
    if (model_ == nullptr || !config_.enabled) return current;
    if (jobs_total < jobs_anchor_ || energy_total_fj < energy_anchor_fj_) {
      // The meters went backwards: the chip was swapped or restored
      // under us. Re-anchor and hold the level this round.
      jobs_anchor_ = jobs_total;
      energy_anchor_fj_ = energy_total_fj;
      return current;
    }
    const std::uint64_t jobs = jobs_total - jobs_anchor_;
    if (jobs == 0) return current;
    const std::uint64_t mean_fj = (energy_total_fj - energy_anchor_fj_) / jobs;
    jobs_anchor_ = jobs_total;
    energy_anchor_fj_ = energy_total_fj;

    if (config_.p99_guardrail_ticks != 0 &&
        p99_ticks > config_.p99_guardrail_ticks && current > 0) {
      return current - 1;
    }
    const std::uint64_t budget = config_.energy_budget_fj_per_job;
    if (budget == 0) return current;
    if (mean_fj > budget && current + 1 < model_->levels()) {
      return current + 1;
    }
    if (current > 0) {
      // Probe up: re-price the mean job at the faster level's voltage
      // (dynamic energy ~V²) and step up only if it still fits the
      // budget with 5% headroom. Pure u64: mean_fj is far below 2^50
      // and volt_pct² at most 10^4.
      const std::uint64_t up_v = model_->point(current - 1).volt_pct;
      const std::uint64_t cur_v = model_->point(current).volt_pct;
      const std::uint64_t projected = mean_fj * (up_v * up_v) / (cur_v * cur_v);
      if (projected * 100 <= budget * 95) return current - 1;
    }
    return current;
  }

 private:
  DvsConfig config_;
  const cost::EnergyModel* model_ = nullptr;
  /// Decision window anchors (lifetime totals at the last decision).
  std::uint64_t jobs_anchor_ = 0;
  std::uint64_t energy_anchor_fj_ = 0;
};

}  // namespace vlsip::runtime
