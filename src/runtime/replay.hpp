// Deterministic replay: re-run a recorded job trace from a checkpoint.
//
// A checkpointed chip is only half a resumable session — the other half
// is the work that was still in flight. ReplayLog records the admitted
// job stream (program, inputs, placement, budgets) plus the index of
// the first job not yet served when the checkpoint was taken; the pair
// (chip snapshot, replay log) is a complete resumable session. Both
// halves serialise through the same snapshot::Writer/Reader codecs, so
// a .vsnap file written by `vlsipc snapshot` carries them side by side
// and `vlsipc resume` picks up exactly where the interrupted run
// stopped.
//
// replay_from() is the driver: restore the checkpoint into a chip, then
// serve jobs [log.next_job ..) sequentially — single-threaded, virtual
// time only, so re-running the same (checkpoint, log) pair yields
// bit-identical outcomes every time. Outcomes carry
// resumed_from_cycle = log.checkpoint_tick so downstream reports can
// tell a resumed run from an uninterrupted one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vlsi_processor.hpp"
#include "scaling/job.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::runtime {

/// The admitted-job trace of a deterministic run, snapshot-codable.
struct ReplayLog {
  std::vector<scaling::Job> jobs;
  /// Index of the first job in `jobs` not yet served at checkpoint
  /// time; replay starts here.
  std::size_t next_job = 0;
  /// Farm/virtual tick the checkpoint was taken at (stamped onto
  /// replayed outcomes as resumed_from_cycle).
  std::uint64_t checkpoint_tick = 0;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

/// Snapshot codecs for a single job (shared by ReplayLog and tools).
void save_job(snapshot::Writer& w, const scaling::Job& job);
scaling::Job restore_job(snapshot::Reader& r);

/// Snapshot codecs for a JobOutcome — the wire protocol's result
/// payload (net/wire.*). Deterministic: outputs are a std::map, so the
/// encoding order is the sorted port order, and encoding the same
/// outcome twice yields byte-identical bytes (what lets the migration
/// tests compare a peer's replayed outcomes against a local replay
/// byte for byte).
void save_outcome(snapshot::Writer& w, const scaling::JobOutcome& outcome);
scaling::JobOutcome restore_outcome(snapshot::Reader& r);

struct ReplayOptions {
  /// Cycle budget for jobs that don't carry their own.
  std::uint64_t default_max_cycles = 1u << 22;
  /// Compact the chip when an allocation attempt fails fragmented.
  bool compact_on_fragmentation = true;
};

/// Restores `checkpoint` into `chip` (which must be constructed with
/// the geometry the checkpoint was saved from) and serves
/// log.jobs[log.next_job ..] in admission order. Throws
/// snapshot::SnapshotError on a corrupt or mismatched checkpoint.
std::vector<scaling::JobOutcome> replay_from(
    core::VlsiProcessor& chip, const snapshot::Snapshot& checkpoint,
    const ReplayLog& log, const ReplayOptions& options = {});

}  // namespace vlsip::runtime
