#include "runtime/chip_farm.hpp"

#include <algorithm>
#include <exception>

#include "common/require.hpp"
#include "snapshot/incremental.hpp"

namespace vlsip::runtime {

ChipFarm::ChipFarm(FarmConfig config)
    : config_(std::move(config)),
      // Deterministic mode stages every submission before service (see
      // below), so a bounded queue would deadlock blocking admission
      // and make rejections depth-dependent: unbounded instead.
      queue_(config_.deterministic ? SIZE_MAX : config_.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  VLSIP_REQUIRE(config_.workers >= 1, "the farm needs at least one worker");
  // The fault pump walks the plan with one cursor: sorted, in order.
  config_.fault_tolerance.plan.sort();
  // DVS implies energy accounting: the governor prices jobs off the
  // chip's energy meter, so the two cannot be configured apart.
  if (config_.dvs.enabled) config_.chip.energy.enabled = true;
  const std::size_t n = config_.deterministic ? 1 : config_.workers;
  // Deterministic mode starts paused: if the worker consumed while the
  // caller was still submitting, batch composition and queued_at stamps
  // would depend on thread scheduling. drain() lifts the pause, so the
  // natural submit-everything-then-drain flow is race-free.
  if (config_.start_paused || config_.deterministic) queue_.set_paused(true);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    worker->chip = std::make_unique<core::VlsiProcessor>(config_.chip);
    worker->health.worker = i;
    worker->health.total_clusters = worker->chip->total_clusters();
    worker->health.free_clusters = worker->chip->free_clusters();
    worker->health.largest_free_run =
        worker->chip->manager().largest_free_run();
    worker->governor = DvsGovernor(config_.dvs, worker->chip->energy_model());
    workers_.push_back(std::move(worker));
  }
  // Chips first, threads second: a worker thread must never observe a
  // half-built fleet.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] {
      worker_loop(*w);
    });
  }
}

ChipFarm::~ChipFarm() { shutdown(); }

std::uint64_t ChipFarm::now() const {
  if (config_.deterministic) return vclock_.load(std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

Admission ChipFarm::submit(scaling::Job job, SubmitOptions options) {
  VLSIP_REQUIRE(!job.program.stream.empty(), "job has an empty program");
  VLSIP_REQUIRE(job.requested_clusters >= 1,
                "job must request at least one cluster");
  if (options.max_cycles != 0) job.max_cycles = options.max_cycles;

  PendingJob pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.job = std::move(job);
  pending.deadline = options.deadline;
  pending.queued_at = now();
  if (options.arrival_tick > pending.queued_at) {
    pending.queued_at = options.arrival_tick;
    pending.not_before = options.arrival_tick;
  }
  pending.on_complete = std::move(options.on_complete);

  Admission admission;
  admission.id = pending.id;
  admission.outcome = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++admission_metrics_.submitted;
  }

  bool ok;
  std::string reason;
  if (config_.block_when_full) {
    ok = queue_.push_wait(std::move(pending));
    if (!ok) reason = "queue closed";
  } else {
    ok = queue_.try_push(std::move(pending), &reason);
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    if (ok) {
      ++admission_metrics_.admitted;
      admission.admitted = true;
    } else {
      ++admission_metrics_.rejected;
      admission.admitted = false;
      admission.reason = reason;
      admission.outcome = {};
      admission.id = 0;
    }
  }
  if (ok) {
    trace_event(obs::Layer::kRuntime, static_cast<std::int64_t>(admission.id),
                "admission", "job " + std::to_string(admission.id) +
                                 " admitted", now());
  } else {
    trace_event(obs::Layer::kRuntime, -1, "admission",
                "job rejected: " + reason, now());
  }
  return admission;
}

scaling::JobOutcome ChipFarm::cancelled_outcome(
    const PendingJob& pending, const std::string& why) const {
  scaling::JobOutcome outcome;
  outcome.name = pending.job.name;
  outcome.id = pending.id;
  outcome.status = scaling::JobStatus::kCancelled;
  outcome.detail = why;
  outcome.queued_at = pending.queued_at;
  const std::uint64_t t = now();
  outcome.started_at = t;
  outcome.finished_at = t;
  return outcome;
}

bool ChipFarm::cancel(std::uint64_t id) {
  PendingJob pending;
  if (!queue_.cancel(id, pending)) return false;
  scaling::JobOutcome outcome = cancelled_outcome(pending, "cancelled");
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++admission_metrics_.cancelled;
    if (config_.keep_outcome_log) outcome_log_.push_back(outcome);
  }
  pending.promise.set_value(outcome);
  if (pending.on_complete) pending.on_complete(outcome);
  return true;
}

void ChipFarm::pause() { queue_.set_paused(true); }
void ChipFarm::resume() { queue_.set_paused(false); }
void ChipFarm::drain() {
  // In deterministic mode the farm pauses itself at construction;
  // drain is the point where staging ends and service begins.
  if (config_.deterministic) queue_.set_paused(false);
  queue_.wait_idle();
}

void ChipFarm::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ChipFarm::worker_loop(Worker& worker) {
  for (;;) {
    std::vector<PendingJob> batch = queue_.pop_batch(config_.batch);
    if (batch.empty()) return;  // closed and drained
    serve_batch(worker, std::move(batch));
    // Health check before finish_batch(): drain() must observe a chip
    // that has already been compacted/snapshotted for this batch.
    health_check(worker);
    queue_.finish_batch();
  }
}

void ChipFarm::serve_batch(Worker& worker, std::vector<PendingJob> batch) {
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++worker.metrics.batches;
  }
  trace_event(obs::Layer::kRuntime,
              static_cast<std::int64_t>(worker.index), "batch",
              "worker " + std::to_string(worker.index) +
                  " serving batch of " + std::to_string(batch.size()) +
                  " jobs (" +
                  std::to_string(batch.front().job.requested_clusters) +
                  " clusters)",
              now());
  const FaultToleranceConfig& ft = config_.fault_tolerance;

  // One fused processor for the whole batch (take_batch groups by
  // requested_clusters): the configuration wormhole is paid once here,
  // then each job only re-runs the AP-level configuration pipeline.
  // Fault injection can kill the fused processor (or the whole chip)
  // mid-batch, so `proc` is re-fused as needed and the chip is always
  // reached through worker.chip (quarantine swaps it).
  const std::size_t clusters = batch.front().job.requested_clusters;
  scaling::ProcId proc = worker.chip->fuse(clusters);
  std::size_t fuses = proc != scaling::kNoProc ? 1 : 0;
  std::size_t ran_on_shared = 0;

  const auto account_reuse = [&] {
    if (ran_on_shared > fuses) {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      worker.metrics.fuse_reuses += ran_on_shared - fuses;
    }
  };

  for (std::size_t i = 0; i < batch.size(); ++i) {
    PendingJob& pending = batch[i];

    if (ft.enabled) {
      // Global serve-sequence number: the fault plan's trigger axis.
      const std::uint64_t seq =
          serve_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      pump_faults(worker, seq);
    }

    if (worker.crash_pending) {
      // The chip died mid-batch. Retire it, fuse in a spare, and push
      // this job and the rest of the batch back through admission so
      // they land on healthy silicon (none of them consumed a service
      // attempt — the crash pre-empted them).
      worker.crash_pending = false;
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        ++worker.metrics.worker_crashes;
      }
      trace_event(obs::Layer::kFault,
                  static_cast<std::int64_t>(worker.index), "crash",
                  "worker " + std::to_string(worker.index) +
                      " chip crashed mid-batch; requeueing " +
                      std::to_string(batch.size() - i) + " jobs",
                  now());
      quarantine_chip(worker, "worker crash");
      proc = scaling::kNoProc;  // died with the chip
      for (std::size_t j = i; j < batch.size(); ++j) {
        queue_.requeue(std::move(batch[j]));
      }
      account_reuse();
      return;
    }

    if (worker.stall_pending > 0) {
      // A stall occupies the chip without serving: latency, not loss.
      const std::uint64_t ticks = worker.stall_pending;
      worker.stall_pending = 0;
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        ++worker.metrics.worker_stalls;
      }
      trace_event(obs::Layer::kFault,
                  static_cast<std::int64_t>(worker.index), "stall",
                  "worker " + std::to_string(worker.index) + " stalled " +
                      std::to_string(ticks) + " ticks",
                  now(), ticks);
      wait_until_tick(now() + ticks);
    }

    // Retry backoff: the job may not be served before not_before.
    if (pending.not_before > now()) wait_until_tick(pending.not_before);

    if (pending.deadline != 0 && now() > pending.deadline) {
      finish_job(worker, pending,
                 cancelled_outcome(pending, "deadline expired before start"));
      continue;
    }

    // Heal the batch's shared processor: a cluster fault may have
    // driven it through release, or a quarantine swapped the chip.
    if (ft.enabled &&
        (proc == scaling::kNoProc || !worker.chip->manager().alive(proc))) {
      proc = worker.chip->fuse(clusters);
      if (proc != scaling::kNoProc) ++fuses;
    }

    ++pending.attempts;
    scaling::JobOutcome outcome;
    const std::uint64_t started = now();
    if (proc == scaling::kNoProc) {
      outcome.name = pending.job.name;
      outcome.status = scaling::JobStatus::kNoAllocation;
      outcome.detail = "cannot fuse " + std::to_string(clusters) +
                       " clusters on a " +
                       std::to_string(worker.chip->total_clusters()) +
                       "-cluster chip";
    } else {
      // The chip's energy meter brackets the service: the delta is the
      // job's bill. Counter-derived, so deterministic per seed.
      const std::uint64_t fj_before = worker.chip->energy_enabled()
                                          ? worker.chip->energy_total_fj()
                                          : 0;
      try {
        outcome = run_job_on(worker.chip->manager(), proc, pending.job,
                             config_.default_max_cycles);
        ++ran_on_shared;
      } catch (const std::exception& e) {
        outcome.name = pending.job.name;
        outcome.status = scaling::JobStatus::kError;
        outcome.detail = e.what();
      }
      if (worker.chip->energy_enabled()) {
        outcome.energy_fj = worker.chip->energy_total_fj() - fj_before;
        ++worker.jobs_served;
      }
    }

    if (ft.enabled) {
      const bool faulty =
          outcome.status == scaling::JobStatus::kError ||
          outcome.status == scaling::JobStatus::kNoAllocation;
      if (faulty) {
        ++worker.consecutive_faults;
      } else {
        worker.consecutive_faults = 0;
      }
      if (faulty && should_retry(pending, outcome)) {
        requeue_for_retry(worker, pending);
        if (ft.quarantine_after > 0 &&
            worker.consecutive_faults >= ft.quarantine_after) {
          quarantine_chip(worker, "repeated faults");
          proc = scaling::kNoProc;
        }
        continue;  // promise unresolved; the retry owns it now
      }
      if (faulty && pending.attempts > 1) {
        outcome.detail +=
            " (after " + std::to_string(pending.attempts) + " attempts)";
      }
      if (ft.quarantine_after > 0 &&
          worker.consecutive_faults >= ft.quarantine_after) {
        quarantine_chip(worker, "repeated faults");
        proc = scaling::kNoProc;
      }
    }

    if (!config_.deterministic && config_.chip_hz > 0.0) {
      // Occupy the chip for as long as the silicon would have: the
      // simulator tells us the cycle count, the clock rate tells us
      // the seconds. Zero-cycle outcomes (unallocatable, errored)
      // don't sleep. chip_hz is the *nominal* clock; the chip's DVS
      // operating point scales the effective rate.
      const auto cycles =
          static_cast<double>(outcome.config_cycles + outcome.exec_cycles);
      double hz = config_.chip_hz;
      if (worker.chip->energy_enabled()) {
        hz = hz * static_cast<double>(worker.chip->dvs_point().freq_pct) /
             100.0;
      }
      const auto pace_ns = static_cast<std::int64_t>(cycles * 1e9 / hz);
      if (pace_ns > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(pace_ns));
    }

    outcome.started_at = started;
    if (config_.deterministic) {
      // Virtual ticks are nominal-clock time: a throttled chip takes
      // cycles * 100 / freq_pct ticks for the same work, so DVS shows
      // up as latency exactly as on silicon — and at the nominal level
      // (freq_pct == 100) the schedule is bit-identical to energy-off.
      std::uint64_t ticks = outcome.config_cycles + outcome.exec_cycles;
      if (worker.chip->energy_enabled()) {
        ticks = ticks * 100 / worker.chip->dvs_point().freq_pct;
      }
      outcome.finished_at =
          vclock_.fetch_add(ticks, std::memory_order_relaxed) + ticks;
      outcome.started_at = outcome.finished_at - ticks;
    } else {
      outcome.finished_at = now();
    }
    finish_job(worker, pending, std::move(outcome));
  }

  if (proc != scaling::kNoProc && worker.chip->manager().alive(proc)) {
    worker.chip->release(proc);
  }
  account_reuse();
}

void ChipFarm::finish_job(Worker& worker, PendingJob& pending,
                          scaling::JobOutcome outcome) {
  outcome.id = pending.id;
  outcome.queued_at = pending.queued_at;
  outcome.attempts = pending.attempts;
  outcome.resumed_from_cycle = worker.resumed_from;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    worker.metrics.record(outcome);
    if (config_.keep_outcome_log) outcome_log_.push_back(outcome);
  }
  // The job's service renders as a chrome-trace span on the worker's
  // track: [started_at, finished_at] in farm ticks.
  trace_event(obs::Layer::kRuntime,
              static_cast<std::int64_t>(worker.index), "job",
              "job " + std::to_string(outcome.id) + " " +
                  scaling::to_string(outcome.status) + " on worker " +
                  std::to_string(worker.index),
              outcome.started_at, outcome.finished_at - outcome.started_at);
  pending.promise.set_value(outcome);
  if (pending.on_complete) pending.on_complete(outcome);
}

void ChipFarm::wait_until_tick(std::uint64_t tick) {
  if (config_.deterministic) {
    std::uint64_t current = vclock_.load(std::memory_order_relaxed);
    while (current < tick &&
           !vclock_.compare_exchange_weak(current, tick,
                                          std::memory_order_relaxed)) {
    }
    return;
  }
  const std::uint64_t current = now();
  if (tick > current) {
    std::this_thread::sleep_for(std::chrono::microseconds(tick - current));
  }
}

void ChipFarm::pump_faults(Worker& worker, std::uint64_t seq) {
  const fault::FaultPlan& plan = config_.fault_tolerance.plan;
  fault::InjectionStats stats;
  std::uint64_t consumed = 0;
  {
    // The cursor is shared across workers; events fire on whichever
    // worker reaches their serve-sequence point (always the same one
    // in deterministic mode).
    std::lock_guard<std::mutex> lock(fault_mutex_);
    while (next_fault_ < plan.events.size() &&
           plan.events[next_fault_].at <= seq) {
      const fault::FaultEvent& event = plan.events[next_fault_++];
      ++consumed;
      switch (event.kind) {
        case fault::FaultKind::kWorkerStall:
          worker.stall_pending += std::max<std::uint64_t>(1, event.arg);
          break;
        case fault::FaultKind::kWorkerCrash:
          worker.crash_pending = true;
          break;
        default:
          fault::apply_chip_event(*worker.chip, event, stats);
          break;
      }
    }
  }
  if (consumed > 0) {
    {
      // Injected-vs-recovered accounting: the chip-level injection
      // stats (applied/skipped, reroute/drop recoveries) used to be
      // discarded here; fold them into the farm metrics.
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      worker.metrics.injected_faults += consumed;
      worker.metrics.fault_events_applied += stats.applied;
      worker.metrics.fault_events_skipped += stats.skipped;
      worker.metrics.fault_refusals += stats.refusals;
      worker.metrics.routes_rerouted += stats.routes_rerouted;
      worker.metrics.routes_dropped += stats.routes_dropped;
    }
    trace_event(obs::Layer::kFault,
                static_cast<std::int64_t>(worker.index), "inject",
                "worker " + std::to_string(worker.index) + " consumed " +
                    std::to_string(consumed) + " fault events (" +
                    std::to_string(stats.applied) + " applied, " +
                    std::to_string(stats.skipped) + " skipped, " +
                    std::to_string(stats.routes_rerouted) + " rerouted, " +
                    std::to_string(stats.routes_dropped) + " dropped)",
                now());
  }
}

bool ChipFarm::should_retry(const PendingJob& pending,
                            const scaling::JobOutcome& outcome) const {
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  if (!ft.enabled) return false;
  // attempts counts services including the one that just failed, so
  // retries used = attempts - 1.
  if (pending.attempts > ft.max_retries) return false;
  return outcome.status == scaling::JobStatus::kError ||
         outcome.status == scaling::JobStatus::kNoAllocation;
}

void ChipFarm::requeue_for_retry(Worker& worker, PendingJob& pending) {
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  if (ft.retry_backoff_ticks > 0) {
    // Exponential: attempt k waits base << (k - 1) ticks.
    pending.not_before =
        now() + (ft.retry_backoff_ticks << (pending.attempts - 1));
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++worker.metrics.retries;
  }
  trace_event(obs::Layer::kRuntime,
              static_cast<std::int64_t>(pending.id), "retry",
              "job " + std::to_string(pending.id) +
                  " requeued for retry (attempt " +
                  std::to_string(pending.attempts + 1) + ")",
              now());
  queue_.requeue(std::move(pending));
}

Status ChipFarm::save_chip(std::size_t index, snapshot::Snapshot& out) const {
  if (index >= workers_.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "no worker slot " + std::to_string(index));
  }
  // Precondition (header): farm idle. Locking metrics_mutex_ acquires
  // the publication the worker's last post-batch health check released,
  // so this thread reads the chip's final state, not a stale view.
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return workers_[index]->chip->save(out);
}

Status ChipFarm::restore_chip(std::size_t index, const snapshot::Snapshot& snap,
                              std::uint64_t resumed_from_tick) {
  if (index >= workers_.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "no worker slot " + std::to_string(index));
  }
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  const Status restored = worker.chip->restore(snap);
  if (restored.ok()) {
    worker.resumed_from = resumed_from_tick;
    ++worker.metrics.chip_restores;
  }
  return restored;
}

Status ChipFarm::save_chip_chain(std::size_t index,
                                 std::vector<snapshot::Snapshot>& out) const {
  if (index >= workers_.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "no worker slot " + std::to_string(index));
  }
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  out.clear();
  if (config_.incremental_checkpoints && worker.ckpt_profile.valid() &&
      !worker.ckpt_keyframe.empty()) {
    // The chip may have served batches since the last cadence
    // checkpoint; cap the chain with a fresh delta so the receiver
    // materialises the chip as it is *now*, not as of the cadence.
    core::SaveProfile current;
    const Status saved =
        worker.chip->save_profiled(current, worker.ckpt_profile);
    if (saved.ok()) {
      try {
        out.push_back(worker.ckpt_keyframe);
        out.insert(out.end(), worker.ckpt_deltas.begin(),
                   worker.ckpt_deltas.end());
        if (current.flat.bytes() != worker.ckpt_profile.flat.bytes()) {
          out.push_back(snapshot::encode_delta(
              worker.ckpt_profile.flat, worker.ckpt_profile.index,
              current.flat, current.index));
        }
        return Status::Ok();
      } catch (const std::exception&) {
        out.clear();  // fall through to the full-snapshot fallback
      }
    }
  }
  // No chain (incremental off, pre-first-checkpoint, or a failed
  // encode): a single full snapshot is still a valid chain.
  snapshot::Snapshot full;
  const Status saved = worker.chip->save(full);
  if (saved.ok()) out.push_back(std::move(full));
  return saved;
}

void ChipFarm::quarantine_chip(Worker& worker, const char* why) {
  // The defective chip leaves the fleet; a spare of the same shape
  // takes over its slot. Any state on the old chip is gone — jobs it
  // was serving have already been requeued or finished. Its layer
  // probes are folded into the slot's retired registry first so the
  // counters survive the silicon.
  worker.chip->export_obs(worker.retired_obs);
  worker.chip = std::make_unique<core::VlsiProcessor>(config_.chip);
  // The governor's model pointer and meter anchors died with the old
  // chip; re-seat both on the replacement.
  worker.governor = DvsGovernor(config_.dvs, worker.chip->energy_model());
  worker.jobs_served = 0;
  worker.consecutive_faults = 0;
  worker.stall_pending = 0;
  worker.resumed_from = 0;
  // The chain dies with the chip: a replacement instance's dirty
  // generations are not comparable with the retired one's, so the next
  // checkpoint must re-anchor on a fresh keyframe.
  worker.ckpt_profile = core::SaveProfile{};
  worker.ckpt_keyframe.clear();
  worker.ckpt_deltas.clear();
  if (config_.checkpoint_every_batches > 0 &&
      !worker.last_checkpoint.empty()) {
    // Resume the replacement from the slot's last known-good state
    // instead of blank silicon: quarantined defects, region layout and
    // accumulated AP state all carry over from the checkpoint.
    const Status restored = worker.chip->restore(worker.last_checkpoint);
    if (restored.ok()) {
      worker.resumed_from = worker.last_checkpoint_tick;
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        ++worker.metrics.chip_restores;
      }
      trace_event(obs::Layer::kRuntime,
                  static_cast<std::int64_t>(worker.index), "restore",
                  "worker " + std::to_string(worker.index) +
                      " restored replacement chip from checkpoint at tick " +
                      std::to_string(worker.last_checkpoint_tick),
                  now());
    } else {
      trace_event(obs::Layer::kRuntime,
                  static_cast<std::int64_t>(worker.index), "restore",
                  "worker " + std::to_string(worker.index) +
                      " checkpoint restore failed (" + restored.to_string() +
                      "); serving on fresh silicon",
                  now());
    }
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++worker.metrics.quarantined_chips;
    ++worker.health.chips_retired;
    worker.health.last_quarantine_reason = why;
  }
  trace_event(obs::Layer::kRuntime,
              static_cast<std::int64_t>(worker.index), "quarantine",
              "worker " + std::to_string(worker.index) +
                  " quarantined its chip (" + why + ")",
              now());
  publish_health(worker);
  publish_obs(worker);
}

void ChipFarm::health_check(Worker& worker) {
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  if (ft.enabled) {
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++worker.metrics.health_checks;
    }
    auto& manager = worker.chip->manager();
    if (ft.compact_on_health_check &&
        manager.largest_free_run() < manager.free_clusters()) {
      if (manager.compact() > 0) {
        {
          std::lock_guard<std::mutex> lock(metrics_mutex_);
          ++worker.metrics.health_compactions;
        }
        trace_event(obs::Layer::kRuntime,
                    static_cast<std::int64_t>(worker.index), "health",
                    "worker " + std::to_string(worker.index) +
                        " compacted its chip at health check",
                    now());
      }
    }
  }
  if (config_.dvs.enabled && worker.chip->energy_enabled()) {
    // The governor steps at most one ladder level per health check,
    // reading the worker's own latency distribution (deterministic mode
    // runs one worker, so this is the farm-wide p99).
    double p99 = 0.0;
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      p99 = worker.metrics.latency_percentile(0.99);
    }
    const std::size_t current = worker.chip->dvs_level();
    const std::size_t next = worker.governor.decide(
        current, worker.jobs_served, worker.chip->energy_total_fj(),
        static_cast<std::uint64_t>(p99));
    if (next != current) {
      worker.chip->set_dvs_level(next);
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        ++worker.metrics.dvs_level_changes;
      }
      const auto point = worker.chip->dvs_point();
      trace_event(obs::Layer::kRuntime,
                  static_cast<std::int64_t>(worker.index), "dvs",
                  "worker " + std::to_string(worker.index) +
                      " stepped DVS level " + std::to_string(current) +
                      " -> " + std::to_string(next) + " (f " +
                      std::to_string(point.freq_pct) + "%, V " +
                      std::to_string(point.volt_pct) + "%)",
                  now());
    }
  }
  // Checkpoint after any compaction so the snapshot captures the
  // defragmented layout; the chip is quiescent between batches. The
  // governor steps first so the snapshot carries the new DVS level.
  maybe_checkpoint(worker);
  publish_health(worker);
  // Post-batch is the safe publication point for the chip's layer
  // probes: the chip mutates only on this thread, and the registry swap
  // below is mutex-published for snapshot readers.
  publish_obs(worker);
}

void ChipFarm::maybe_checkpoint(Worker& worker) {
  if (config_.checkpoint_every_batches == 0) return;
  if (++worker.batches_since_checkpoint < config_.checkpoint_every_batches) {
    return;
  }
  worker.batches_since_checkpoint = 0;
  const auto t0 = std::chrono::steady_clock::now();
  Status saved = Status::Ok();
  // Bytes this checkpoint actually costs: the delta container on the
  // incremental path, the full snapshot otherwise.
  std::size_t emitted_bytes = 0;
  if (config_.incremental_checkpoints) {
    // A chain needs a keyframe to anchor it, is bounded by
    // checkpoint_keyframe_every, and breaks at quarantine (the cleared
    // profile). checkpoint_chain_max_links additionally caps the total
    // chain length (keyframe + deltas): extending must not push the
    // link count past the cap. Anything else: start fresh with a
    // keyframe.
    const bool extend_chain =
        worker.ckpt_profile.valid() && !worker.ckpt_keyframe.empty() &&
        worker.ckpt_deltas.size() < config_.checkpoint_keyframe_every &&
        (config_.checkpoint_chain_max_links == 0 ||
         worker.ckpt_deltas.size() + 2 <= config_.checkpoint_chain_max_links);
    try {
      if (extend_chain) {
        core::SaveProfile base = std::move(worker.ckpt_profile);
        saved = worker.chip->save_profiled(worker.ckpt_profile, base);
        if (saved.ok()) {
          worker.ckpt_deltas.push_back(snapshot::encode_delta(
              base.flat, base.index, worker.ckpt_profile.flat,
              worker.ckpt_profile.index));
          emitted_bytes = worker.ckpt_deltas.back().size();
        }
      } else {
        saved = worker.chip->save_profiled(worker.ckpt_profile);
        if (saved.ok()) {
          worker.ckpt_keyframe = worker.ckpt_profile.flat;
          worker.ckpt_deltas.clear();
          emitted_bytes = worker.ckpt_keyframe.size();
        }
      }
    } catch (const std::exception& e) {
      saved = Status(StatusCode::kCorruptSnapshot, e.what());
    }
    // The quarantine-restore path keeps reading a flat snapshot, so a
    // corrupted chain can never take the slot's recovery down with it.
    if (saved.ok()) {
      worker.last_checkpoint = worker.ckpt_profile.flat;
    }
  } else {
    saved = worker.chip->save(worker.last_checkpoint);
    emitted_bytes = worker.last_checkpoint.size();
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (!saved.ok()) {
    // A failed save must not leave a half-written checkpoint for the
    // quarantine path to restore, nor a broken link in the chain.
    worker.last_checkpoint.clear();
    worker.ckpt_profile = core::SaveProfile{};
    worker.ckpt_keyframe.clear();
    worker.ckpt_deltas.clear();
    trace_event(obs::Layer::kRuntime,
                static_cast<std::int64_t>(worker.index), "checkpoint",
                "worker " + std::to_string(worker.index) +
                    " checkpoint failed (" + saved.to_string() + ")",
                now());
    return;
  }
  worker.last_checkpoint_tick = now();
  {
    // Serialisation cost is host telemetry: it feeds metrics only, never
    // the virtual clock, so deterministic outcomes stay bit-identical.
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++worker.metrics.checkpoints;
    worker.metrics.checkpoint_bytes.add(static_cast<double>(emitted_bytes));
    worker.metrics.checkpoint_full_bytes.add(
        static_cast<double>(worker.last_checkpoint.size()));
    worker.metrics.checkpoint_micros.add(static_cast<double>(micros));
  }
  trace_event(obs::Layer::kRuntime,
              static_cast<std::int64_t>(worker.index), "checkpoint",
              "worker " + std::to_string(worker.index) + " checkpointed (" +
                  std::to_string(emitted_bytes) + " bytes)",
              now());
}

void ChipFarm::publish_obs(Worker& worker) {
  obs::MetricRegistry fresh = worker.retired_obs;
  worker.chip->export_obs(fresh);
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  worker.chip_obs = std::move(fresh);
}

void ChipFarm::trace_event(obs::Layer layer, std::int64_t id,
                           const char* category, std::string message,
                           std::uint64_t cycle, std::uint64_t dur) {
  obs::TraceSink* sink = config_.trace;
  if (sink == nullptr || !sink->enabled()) return;
  std::lock_guard<std::mutex> lock(trace_mutex_);
  sink->event(cycle, layer, category, id, std::move(message), dur);
}

void ChipFarm::publish_health(Worker& worker) {
  // Chip reads happen on the owning worker thread; only the snapshot
  // write is shared state.
  const std::size_t total = worker.chip->total_clusters();
  const std::size_t defective = worker.chip->defective_clusters();
  const std::size_t free_now = worker.chip->free_clusters();
  const std::size_t run = worker.chip->manager().largest_free_run();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  worker.health.total_clusters = total;
  worker.health.defective_clusters = defective;
  worker.health.free_clusters = free_now;
  worker.health.largest_free_run = run;
  worker.health.consecutive_faults = worker.consecutive_faults;
}

std::vector<ChipFarm::ChipHealth> ChipFarm::health() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  std::vector<ChipHealth> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) out.push_back(worker->health);
  return out;
}

FarmMetrics ChipFarm::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  FarmMetrics total = admission_metrics_;
  for (const auto& worker : workers_) total.merge(worker->metrics);
  return total;
}

obs::MetricRegistry ChipFarm::obs_metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  FarmMetrics total = admission_metrics_;
  for (const auto& worker : workers_) total.merge(worker->metrics);
  obs::MetricRegistry out;
  total.export_into(out);
  out.gauge("farm.workers") = static_cast<double>(workers_.size());
  out.gauge("farm.queue_depth") = static_cast<double>(queue_.size());
  for (const auto& worker : workers_) out.merge(worker->chip_obs);
  return out;
}

std::vector<scaling::JobOutcome> ChipFarm::outcome_log() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return outcome_log_;
}

}  // namespace vlsip::runtime
