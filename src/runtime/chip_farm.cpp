#include "runtime/chip_farm.hpp"

#include <exception>

#include "common/require.hpp"

namespace vlsip::runtime {

ChipFarm::ChipFarm(FarmConfig config)
    : config_(std::move(config)),
      // Deterministic mode stages every submission before service (see
      // below), so a bounded queue would deadlock blocking admission
      // and make rejections depth-dependent: unbounded instead.
      queue_(config_.deterministic ? SIZE_MAX : config_.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  VLSIP_REQUIRE(config_.workers >= 1, "the farm needs at least one worker");
  const std::size_t n = config_.deterministic ? 1 : config_.workers;
  // Deterministic mode starts paused: if the worker consumed while the
  // caller was still submitting, batch composition and queued_at stamps
  // would depend on thread scheduling. drain() lifts the pause, so the
  // natural submit-everything-then-drain flow is race-free.
  if (config_.start_paused || config_.deterministic) queue_.set_paused(true);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->chip = std::make_unique<core::VlsiProcessor>(config_.chip);
    workers_.push_back(std::move(worker));
  }
  // Chips first, threads second: a worker thread must never observe a
  // half-built fleet.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] {
      worker_loop(*w);
    });
  }
}

ChipFarm::~ChipFarm() { shutdown(); }

std::uint64_t ChipFarm::now() const {
  if (config_.deterministic) return vclock_.load(std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

Admission ChipFarm::submit(scaling::Job job, SubmitOptions options) {
  VLSIP_REQUIRE(!job.program.stream.empty(), "job has an empty program");
  VLSIP_REQUIRE(job.requested_clusters >= 1,
                "job must request at least one cluster");
  if (options.max_cycles != 0) job.max_cycles = options.max_cycles;

  PendingJob pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.job = std::move(job);
  pending.deadline = options.deadline;
  pending.queued_at = now();
  pending.on_complete = std::move(options.on_complete);

  Admission admission;
  admission.id = pending.id;
  admission.outcome = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++admission_metrics_.submitted;
  }

  bool ok;
  std::string reason;
  if (config_.block_when_full) {
    ok = queue_.push_wait(std::move(pending));
    if (!ok) reason = "queue closed";
  } else {
    ok = queue_.try_push(std::move(pending), &reason);
  }

  std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (ok) {
    ++admission_metrics_.admitted;
    admission.admitted = true;
  } else {
    ++admission_metrics_.rejected;
    admission.admitted = false;
    admission.reason = reason;
    admission.outcome = {};
    admission.id = 0;
  }
  return admission;
}

scaling::JobOutcome ChipFarm::cancelled_outcome(
    const PendingJob& pending, const std::string& why) const {
  scaling::JobOutcome outcome;
  outcome.name = pending.job.name;
  outcome.id = pending.id;
  outcome.status = scaling::JobStatus::kCancelled;
  outcome.detail = why;
  outcome.queued_at = pending.queued_at;
  const std::uint64_t t = now();
  outcome.started_at = t;
  outcome.finished_at = t;
  return outcome;
}

bool ChipFarm::cancel(std::uint64_t id) {
  PendingJob pending;
  if (!queue_.cancel(id, pending)) return false;
  scaling::JobOutcome outcome = cancelled_outcome(pending, "cancelled");
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++admission_metrics_.cancelled;
    if (config_.keep_outcome_log) outcome_log_.push_back(outcome);
  }
  pending.promise.set_value(outcome);
  if (pending.on_complete) pending.on_complete(outcome);
  return true;
}

void ChipFarm::pause() { queue_.set_paused(true); }
void ChipFarm::resume() { queue_.set_paused(false); }
void ChipFarm::drain() {
  // In deterministic mode the farm pauses itself at construction;
  // drain is the point where staging ends and service begins.
  if (config_.deterministic) queue_.set_paused(false);
  queue_.wait_idle();
}

void ChipFarm::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ChipFarm::worker_loop(Worker& worker) {
  for (;;) {
    std::vector<PendingJob> batch = queue_.pop_batch(config_.batch);
    if (batch.empty()) return;  // closed and drained
    serve_batch(worker, std::move(batch));
    queue_.finish_batch();
  }
}

void ChipFarm::serve_batch(Worker& worker, std::vector<PendingJob> batch) {
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++worker.metrics.batches;
  }

  // One fused processor for the whole batch (take_batch groups by
  // requested_clusters): the configuration wormhole is paid once here,
  // then each job only re-runs the AP-level configuration pipeline.
  const std::size_t clusters = batch.front().job.requested_clusters;
  auto& chip = *worker.chip;
  const scaling::ProcId proc = chip.fuse(clusters);
  std::size_t ran_on_shared = 0;

  for (PendingJob& pending : batch) {
    if (pending.deadline != 0 && now() > pending.deadline) {
      finish_job(worker, pending,
                 cancelled_outcome(pending, "deadline expired before start"));
      continue;
    }

    scaling::JobOutcome outcome;
    const std::uint64_t started = now();
    if (proc == scaling::kNoProc) {
      outcome.name = pending.job.name;
      outcome.status = scaling::JobStatus::kNoAllocation;
      outcome.detail = "cannot fuse " + std::to_string(clusters) +
                       " clusters on a " +
                       std::to_string(chip.total_clusters()) +
                       "-cluster chip";
    } else {
      try {
        outcome = run_job_on(chip.manager(), proc, pending.job,
                             config_.default_max_cycles);
        ++ran_on_shared;
      } catch (const std::exception& e) {
        outcome.name = pending.job.name;
        outcome.status = scaling::JobStatus::kError;
        outcome.detail = e.what();
      }
    }

    if (!config_.deterministic && config_.chip_hz > 0.0) {
      // Occupy the chip for as long as the silicon would have: the
      // simulator tells us the cycle count, the clock rate tells us
      // the seconds. Zero-cycle outcomes (unallocatable, errored)
      // don't sleep.
      const auto cycles =
          static_cast<double>(outcome.config_cycles + outcome.exec_cycles);
      const auto pace_ns =
          static_cast<std::int64_t>(cycles * 1e9 / config_.chip_hz);
      if (pace_ns > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(pace_ns));
    }

    outcome.started_at = started;
    if (config_.deterministic) {
      outcome.finished_at =
          vclock_.fetch_add(outcome.config_cycles + outcome.exec_cycles,
                            std::memory_order_relaxed) +
          outcome.config_cycles + outcome.exec_cycles;
      outcome.started_at =
          outcome.finished_at - outcome.config_cycles - outcome.exec_cycles;
    } else {
      outcome.finished_at = now();
    }
    finish_job(worker, pending, std::move(outcome));
  }

  if (proc != scaling::kNoProc) {
    chip.release(proc);
    if (ran_on_shared > 1) {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      worker.metrics.fuse_reuses += ran_on_shared - 1;
    }
  }
}

void ChipFarm::finish_job(Worker& worker, PendingJob& pending,
                          scaling::JobOutcome outcome) {
  outcome.id = pending.id;
  outcome.queued_at = pending.queued_at;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    worker.metrics.record(outcome);
    if (config_.keep_outcome_log) outcome_log_.push_back(outcome);
  }
  pending.promise.set_value(outcome);
  if (pending.on_complete) pending.on_complete(outcome);
}

FarmMetrics ChipFarm::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  FarmMetrics total = admission_metrics_;
  for (const auto& worker : workers_) total.merge(worker->metrics);
  return total;
}

std::vector<scaling::JobOutcome> ChipFarm::outcome_log() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return outcome_log_;
}

}  // namespace vlsip::runtime
