// ChipFarm — a concurrent multi-chip job-serving runtime.
//
// The paper sizes one dynamic CMP to one job at a time; a production
// service sizes a *fleet*. The farm owns N worker threads, each driving
// an independent VlsiProcessor (one simulated chip), behind a bounded
// admission queue with caller-chosen backpressure (block or reject with
// a reason). Workers pull batches grouped by requested_clusters
// (runtime/batcher.*) and keep one fused processor alive across a
// batch, paying the §3.3 configuration wormhole once per batch instead
// of once per job. Completion is asynchronous: submit() returns a
// std::future<JobOutcome>, with an optional callback invoked on the
// worker thread. Per-job deadlines cancel jobs still queued when their
// time passes; per-job cycle budgets time out runaway programs.
//
// Two clocks:
//   * threaded mode (default): ticks are wall-clock microseconds since
//     farm construction — real service latency under real concurrency;
//   * deterministic mode: one worker, and ticks are the virtual cycle
//     clock advanced by each job's simulated config+exec cycles. The
//     farm constructs paused with an unbounded queue and drain()/
//     resume() starts service, so submissions never race the worker:
//     the same manifest yields bit-identical JobOutcome sequences on
//     every run (tests pin this down).
//
// Metrics aggregate per-worker FarmMetrics into farm-level throughput
// and p50/p95/p99 latency (obs/farm_metrics.*; exact below the latency
// sketch's reservoir capacity, bounded-memory past it). obs_metrics()
// additionally merges every worker chip's layer probes (noc/scaling/ap)
// into one MetricRegistry for the ObsSnapshot exporters, and
// FarmConfig::trace accepts a TraceSink that receives structured
// farm-level events (admission, batches, faults, healing) suitable for
// chrome-trace export.
//
// Fault tolerance (FaultToleranceConfig): the farm can replay a seeded
// fault::FaultPlan — events keyed to the global serve-sequence number,
// so deterministic mode stays bit-identical — injecting chip faults
// (cluster / object / switch / CSD-segment / memory) plus worker stalls
// and crashes. The self-healing path retries environment-induced
// failures with exponential backoff, quarantines chips that fault
// repeatedly (fresh silicon takes the slot), health-checks chips
// between batches (compacting fragmentation), and surfaces it all via
// degraded-mode metrics and health() snapshots. The invariant the chaos
// tests pin: no admitted job is ever lost — every future resolves.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/vlsi_processor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/farm_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "runtime/admission_queue.hpp"
#include "runtime/dvs_governor.hpp"
#include "scaling/job.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::runtime {

/// The farm's metrics live in the observability spine now; the runtime
/// keeps the historical name so embedders and tests are unaffected.
using FarmMetrics = obs::FarmMetrics;

/// Self-healing knobs. When enabled, the farm consumes a FaultPlan
/// (events triggered by the global serve-sequence number, so
/// deterministic mode stays bit-identical), retries environment-induced
/// failures with exponential backoff, quarantines chips that fault
/// repeatedly, and health-checks chips between batches.
struct FaultToleranceConfig {
  bool enabled = false;
  /// Fault plan to replay. Event `at` fields are global serve-sequence
  /// numbers: event e fires just before the farm's e.at-th service
  /// attempt (farm-wide), on the worker performing it.
  fault::FaultPlan plan;
  /// Extra service attempts for a job whose failure the farm classifies
  /// as environment-induced (chip error / crash / no-allocation while
  /// fault injection is active). 0 disables retry.
  std::size_t max_retries = 2;
  /// Backoff before retry attempt k is served: base << (k - 1) farm
  /// ticks (virtual cycles in deterministic mode, microseconds
  /// threaded). 0 retries immediately.
  std::uint64_t retry_backoff_ticks = 64;
  /// Consecutive faulty services after which a worker's chip is pulled
  /// from service and replaced with a fresh one (0 = never).
  std::size_t quarantine_after = 3;
  /// Compact a fragmented chip during the post-batch health check.
  bool compact_on_health_check = true;
};

struct FarmConfig {
  /// Worker threads = independent chips (deterministic mode forces 1).
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  /// Backpressure when the queue is full: block the submitter until
  /// space frees (true) or reject with a reason (false).
  bool block_when_full = false;
  BatchPolicy batch;
  /// Single worker + virtual cycle clock; bit-identical outcomes.
  /// Starts paused with an unbounded queue (queue_capacity and
  /// block_when_full are ignored): submit everything, then drain().
  bool deterministic = false;
  /// Cycle budget for jobs that don't carry their own.
  std::uint64_t default_max_cycles = 1u << 22;
  /// Emulated silicon clock in Hz. When non-zero (threaded mode only),
  /// each job's service is paced so it occupies the chip for
  /// (config+exec cycles)/chip_hz of wall time, as real silicon would.
  /// Throughput then measures farm-level concurrency — how well chips
  /// overlap — rather than how fast the host simulates one chip.
  /// 0 = serve as fast as the host can simulate. With DVS, chip_hz is
  /// the *nominal* clock; the effective clock is chip_hz scaled by the
  /// chip's current ladder point. In deterministic mode the virtual
  /// clock advances by cycles · 100 / freq_pct instead, so a throttled
  /// chip's longer service time is visible in p99 without wall sleeps.
  double chip_hz = 0.0;
  /// Energy-aware scheduling (runtime/dvs_governor.hpp). When enabled,
  /// per-chip energy accounting is forced on (chip.energy.enabled) and
  /// each worker's governor re-picks the chip's DVS level after every
  /// batch, trading p99 latency against joules-per-job under
  /// `dvs.energy_budget_fj_per_job`. The chip's ladder and starting
  /// level come from FarmConfig::chip.energy.
  DvsConfig dvs;
  /// Construct paused: workers start but don't consume until resume().
  bool start_paused = false;
  /// Keep every served outcome for outcome_log() (tests, serve verb).
  bool keep_outcome_log = true;
  /// Checkpoint each worker's chip every N completed batches (at the
  /// post-batch health check, when the chip is quiescent). 0 = off —
  /// checkpointing is never on the job-serving hot path. When on, a
  /// quarantine restores the replacement chip from the slot's last
  /// checkpoint instead of starting from fresh silicon, and outcomes
  /// served on the resumed chip carry resumed_from_cycle.
  std::size_t checkpoint_every_batches = 0;
  /// Incremental checkpoints: after the first full keyframe, each
  /// checkpoint is encoded as a compressed delta container against the
  /// previous one (snapshot/incremental.*). Layers whose dirty
  /// generation is unchanged are spliced instead of re-serialised, and
  /// the delta wire format carries only the bytes that differ — the
  /// combination that makes checkpoint_every_batches=1 viable. The
  /// quarantine-restore path is unaffected (the slot always keeps the
  /// latest materialised flat snapshot too); the chain feeds
  /// save_chip_chain() for drain/migration shipping.
  bool incremental_checkpoints = false;
  /// With incremental_checkpoints: emit a fresh full keyframe after
  /// this many consecutive deltas, bounding chain length (and thus
  /// restore-side materialisation work and corruption blast radius).
  std::size_t checkpoint_keyframe_every = 16;
  /// Chain GC cap: with incremental_checkpoints, force a fresh
  /// keyframe whenever extending the chain would push its total link
  /// count (keyframe + deltas) past this bound — a hard ceiling on
  /// restore-side materialisation work that binds even when
  /// checkpoint_keyframe_every is large. 0 = no cap.
  std::size_t checkpoint_chain_max_links = 0;
  /// Template for each worker's chip.
  core::ChipConfig chip;
  /// Fault injection + self-healing (off by default).
  FaultToleranceConfig fault_tolerance;
  /// Borrowed structured-event sink for farm-level events (admission,
  /// batching, fault injection, self-healing). Null or disabled = no
  /// events, no cost beyond one branch. The farm serialises its own
  /// writes; don't share a sink with concurrent non-farm writers.
  obs::TraceSink* trace = nullptr;
};

struct SubmitOptions {
  /// Absolute farm tick (see ChipFarm::now()) after which the job is
  /// cancelled instead of started; 0 = none.
  std::uint64_t deadline = 0;
  /// Absolute farm tick at which the job nominally arrives; 0 = now.
  /// The job is not served before this tick, and its queued_at stamp —
  /// the base for latency metrics — is the arrival, so open-loop
  /// traffic (scenario packs) can be submitted up front and still
  /// yield release-time latencies. In deterministic mode the virtual
  /// clock advances to the arrival instead of sleeping.
  std::uint64_t arrival_tick = 0;
  /// Overrides the job's cycle budget when non-zero.
  std::uint64_t max_cycles = 0;
  /// Invoked on the worker thread right after the future is fulfilled.
  std::function<void(const scaling::JobOutcome&)> on_complete;
};

/// Result of admission control. On rejection `outcome` is invalid and
/// `reason` says why; on admission the future delivers the JobOutcome.
struct Admission {
  bool admitted = false;
  std::uint64_t id = 0;
  std::string reason;
  std::future<scaling::JobOutcome> outcome;
};

class ChipFarm {
 public:
  explicit ChipFarm(FarmConfig config = {});
  /// Serves everything still admitted, then joins the workers.
  ~ChipFarm();

  ChipFarm(const ChipFarm&) = delete;
  ChipFarm& operator=(const ChipFarm&) = delete;

  /// Admission control. Validates the job (throws PreconditionError on
  /// an empty program or zero clusters, like JobScheduler::submit),
  /// then admits, blocks, or rejects per FarmConfig::block_when_full.
  Admission submit(scaling::Job job, SubmitOptions options = {});

  /// Cancels a job still in the queue: its future resolves to a
  /// kCancelled outcome. Returns false when the job already started
  /// (running jobs are not preempted) or finished.
  bool cancel(std::uint64_t id);

  /// Freeze/unfreeze consumption (admission unaffected) — lets tests
  /// stage exact queue states.
  void pause();
  void resume();

  /// Blocks until every admitted job has been served. The farm must
  /// not be paused — except in deterministic mode, where drain()
  /// itself ends the staging pause and starts service.
  void drain();

  /// Stops admission, serves the backlog, joins workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Current farm tick: wall microseconds since construction, or the
  /// virtual cycle clock in deterministic mode.
  std::uint64_t now() const;

  std::size_t workers() const { return workers_.size(); }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Aggregated snapshot across all workers + admission counters.
  FarmMetrics metrics() const;

  /// One-call observability export: the aggregated FarmMetrics (under
  /// "farm." / "fault." names) merged with every worker chip's layer
  /// probes ("noc.", "scaling.", "ap.", "chip."), as published by each
  /// worker at its last health check — chips mutate only on their own
  /// worker thread, so snapshots never read a live chip.
  obs::MetricRegistry obs_metrics() const;

  /// Served outcomes in completion order (requires keep_outcome_log).
  std::vector<scaling::JobOutcome> outcome_log() const;

  /// One worker's chip condition, as of its last completed batch (the
  /// snapshot a worker publishes after each batch; chips mutate only on
  /// their own worker thread, so live reads would race).
  struct ChipHealth {
    std::size_t worker = 0;
    std::size_t total_clusters = 0;
    std::size_t defective_clusters = 0;
    std::size_t free_clusters = 0;
    std::size_t largest_free_run = 0;
    /// Consecutive faulty services; reset by a clean one or a chip swap.
    std::uint64_t consecutive_faults = 0;
    /// Chips this slot has retired to quarantine so far.
    std::uint64_t chips_retired = 0;
    /// Why the last chip was retired ("worker crash", "repeated
    /// faults"); empty if this slot never quarantined.
    std::string last_quarantine_reason;
  };

  /// Health snapshots for every worker slot.
  std::vector<ChipHealth> health() const;

  // --- remote scheduling hooks (daemon/) ---------------------------------
  //
  // The vlsipd worker daemon drives a farm over the wire and migrates
  // work between processes by shipping chip checkpoints (.vsnap) to a
  // peer. Both hooks require the farm to be idle — call only after
  // drain() has returned and before any further submit(); chips mutate
  // exclusively on their own worker threads, which between batches
  // block on the admission queue and never touch the chip again until
  // a new job arrives.

  /// Serialises worker `index`'s chip into `out` (a complete .vsnap
  /// buffer, restorable by VlsiProcessor::restore or replay_from).
  /// kInvalidArgument on a bad index.
  Status save_chip(std::size_t index, snapshot::Snapshot& out) const;

  /// Restores a shipped checkpoint into worker `index`'s chip (same
  /// geometry required); subsequent outcomes served on it carry
  /// resumed_from_cycle = `resumed_from_tick`. kInvalidArgument on a
  /// bad index, kCorruptSnapshot on bad bytes or geometry mismatch.
  Status restore_chip(std::size_t index, const snapshot::Snapshot& snap,
                      std::uint64_t resumed_from_tick);

  /// Incremental form of save_chip: returns worker `index`'s checkpoint
  /// chain — a full keyframe followed by delta containers, ending with
  /// a freshly computed delta capturing state since the last cadence
  /// checkpoint (omitted when nothing changed). The receiver rebuilds
  /// the flat snapshot with snapshot::materialize_chain. Falls back to
  /// a single-element chain holding a full snapshot when incremental
  /// checkpointing is off or no chain exists yet, so callers can always
  /// materialize what they get. Same idle-farm precondition as
  /// save_chip. kInvalidArgument on a bad index.
  Status save_chip_chain(std::size_t index,
                         std::vector<snapshot::Snapshot>& out) const;

 private:
  struct Worker {
    std::size_t index = 0;
    std::unique_ptr<core::VlsiProcessor> chip;
    std::thread thread;
    FarmMetrics metrics;     // guarded by ChipFarm::metrics_mutex_
    ChipHealth health;       // guarded by ChipFarm::metrics_mutex_
    /// Chip-layer metric snapshot (noc/scaling/ap probes), re-published
    /// by the owning worker at each health check / quarantine; guarded
    /// by ChipFarm::metrics_mutex_.
    obs::MetricRegistry chip_obs;
    /// Layer probes of chips this slot already retired to quarantine —
    /// worker-thread private (only the owning worker reads or writes).
    obs::MetricRegistry retired_obs;
    /// Worker-thread-private fault state (set by the fault pump, read
    /// while serving).
    std::uint64_t consecutive_faults = 0;
    std::uint64_t stall_pending = 0;
    bool crash_pending = false;
    /// Checkpoint state (worker-thread private). last_checkpoint is the
    /// most recent post-batch chip snapshot; empty until the first one.
    snapshot::Snapshot last_checkpoint;
    std::uint64_t last_checkpoint_tick = 0;
    std::size_t batches_since_checkpoint = 0;
    /// Incremental-checkpoint chain state (worker-thread private, read
    /// under metrics_mutex_ by save_chip_chain on an idle farm): the
    /// profile of the previous checkpoint (diff base), the chain's
    /// keyframe, and the delta containers since it. Cleared on
    /// quarantine — a replacement chip's dirty generations are not
    /// comparable with the retired chip's.
    core::SaveProfile ckpt_profile;
    snapshot::Snapshot ckpt_keyframe;
    std::vector<snapshot::Snapshot> ckpt_deltas;
    /// Tick of the checkpoint the current chip was restored from
    /// (0 = uninterrupted silicon); stamped onto served outcomes.
    std::uint64_t resumed_from = 0;
    /// Energy/DVS governor state (worker-thread private). The chip's
    /// ladder level itself lives in the chip (and its snapshots);
    /// these are the governor's decision window and the worker's
    /// lifetime served-with-energy counters feeding it.
    DvsGovernor governor;
    std::uint64_t jobs_served = 0;
  };

  void worker_loop(Worker& worker);
  /// Serves one batch on one chip, reusing a single fused processor
  /// when the batch shares a cluster count.
  void serve_batch(Worker& worker, std::vector<PendingJob> batch);
  void finish_job(Worker& worker, PendingJob& pending,
                  scaling::JobOutcome outcome);
  scaling::JobOutcome cancelled_outcome(const PendingJob& pending,
                                        const std::string& why) const;

  // --- fault tolerance internals (no-ops unless enabled) ----------------

  /// Fires every plan event due at serve-sequence `seq` against the
  /// serving worker: chip events through fault::apply_chip_event,
  /// stalls/crashes onto the worker's pending flags.
  void pump_faults(Worker& worker, std::uint64_t seq);
  /// True when the farm should re-admit this failed service attempt.
  bool should_retry(const PendingJob& pending,
                    const scaling::JobOutcome& outcome) const;
  /// Re-admits a failed job with exponential backoff.
  void requeue_for_retry(Worker& worker, PendingJob& pending);
  /// Retires the worker's chip and fuses in a fresh one.
  void quarantine_chip(Worker& worker, const char* why);
  /// Post-batch health check: publishes a ChipHealth snapshot and
  /// compacts a fragmented chip.
  void health_check(Worker& worker);
  /// Serialises the worker's chip into its checkpoint slot when the
  /// batch cadence (FarmConfig::checkpoint_every_batches) is due.
  void maybe_checkpoint(Worker& worker);
  /// Sleeps (threaded) or advances the virtual clock (deterministic)
  /// until `tick`; used by retry backoff and worker stalls.
  void wait_until_tick(std::uint64_t tick);
  void publish_health(Worker& worker);
  /// Re-exports the worker chip's layer probes into Worker::chip_obs
  /// (on the owning worker thread; the write is mutex-published).
  void publish_obs(Worker& worker);
  /// Farm-level structured event; no-op unless FarmConfig::trace is an
  /// enabled sink. Serialised by trace_mutex_ — never called with
  /// metrics_mutex_ held.
  void trace_event(obs::Layer layer, std::int64_t id, const char* category,
                   std::string message, std::uint64_t cycle,
                   std::uint64_t dur = 0);

  FarmConfig config_;
  AdmissionQueue queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex metrics_mutex_;
  FarmMetrics admission_metrics_;  // submitted/rejected/cancelled
  std::vector<scaling::JobOutcome> outcome_log_;
  /// Serialises writes to the borrowed FarmConfig::trace sink.
  std::mutex trace_mutex_;

  /// Fault-plan cursor (sorted at construction); shared across workers.
  std::mutex fault_mutex_;
  std::size_t next_fault_ = 0;

  /// Virtual clock (deterministic mode); atomic so now() is callable
  /// from any thread.
  std::atomic<std::uint64_t> vclock_{0};
  std::atomic<std::uint64_t> next_id_{1};
  /// Global service-attempt counter — the fault plan's trigger axis.
  std::atomic<std::uint64_t> serve_seq_{0};
  bool shut_down_ = false;
};

}  // namespace vlsip::runtime
