// ChipFarm — a concurrent multi-chip job-serving runtime.
//
// The paper sizes one dynamic CMP to one job at a time; a production
// service sizes a *fleet*. The farm owns N worker threads, each driving
// an independent VlsiProcessor (one simulated chip), behind a bounded
// admission queue with caller-chosen backpressure (block or reject with
// a reason). Workers pull batches grouped by requested_clusters
// (runtime/batcher.*) and keep one fused processor alive across a
// batch, paying the §3.3 configuration wormhole once per batch instead
// of once per job. Completion is asynchronous: submit() returns a
// std::future<JobOutcome>, with an optional callback invoked on the
// worker thread. Per-job deadlines cancel jobs still queued when their
// time passes; per-job cycle budgets time out runaway programs.
//
// Two clocks:
//   * threaded mode (default): ticks are wall-clock microseconds since
//     farm construction — real service latency under real concurrency;
//   * deterministic mode: one worker, and ticks are the virtual cycle
//     clock advanced by each job's simulated config+exec cycles. The
//     farm constructs paused with an unbounded queue and drain()/
//     resume() starts service, so submissions never race the worker:
//     the same manifest yields bit-identical JobOutcome sequences on
//     every run (tests pin this down).
//
// Metrics aggregate per-worker FarmMetrics into farm-level throughput
// and exact p50/p95/p99 latency (runtime/metrics.*).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/vlsi_processor.hpp"
#include "runtime/admission_queue.hpp"
#include "runtime/metrics.hpp"
#include "scaling/job.hpp"

namespace vlsip::runtime {

struct FarmConfig {
  /// Worker threads = independent chips (deterministic mode forces 1).
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  /// Backpressure when the queue is full: block the submitter until
  /// space frees (true) or reject with a reason (false).
  bool block_when_full = false;
  BatchPolicy batch;
  /// Single worker + virtual cycle clock; bit-identical outcomes.
  /// Starts paused with an unbounded queue (queue_capacity and
  /// block_when_full are ignored): submit everything, then drain().
  bool deterministic = false;
  /// Cycle budget for jobs that don't carry their own.
  std::uint64_t default_max_cycles = 1u << 22;
  /// Emulated silicon clock in Hz. When non-zero (threaded mode only),
  /// each job's service is paced so it occupies the chip for
  /// (config+exec cycles)/chip_hz of wall time, as real silicon would.
  /// Throughput then measures farm-level concurrency — how well chips
  /// overlap — rather than how fast the host simulates one chip.
  /// 0 = serve as fast as the host can simulate. Deterministic mode
  /// ignores this (its virtual clock already advances by cycles).
  double chip_hz = 0.0;
  /// Construct paused: workers start but don't consume until resume().
  bool start_paused = false;
  /// Keep every served outcome for outcome_log() (tests, serve verb).
  bool keep_outcome_log = true;
  /// Template for each worker's chip.
  core::ChipConfig chip;
};

struct SubmitOptions {
  /// Absolute farm tick (see ChipFarm::now()) after which the job is
  /// cancelled instead of started; 0 = none.
  std::uint64_t deadline = 0;
  /// Overrides the job's cycle budget when non-zero.
  std::uint64_t max_cycles = 0;
  /// Invoked on the worker thread right after the future is fulfilled.
  std::function<void(const scaling::JobOutcome&)> on_complete;
};

/// Result of admission control. On rejection `outcome` is invalid and
/// `reason` says why; on admission the future delivers the JobOutcome.
struct Admission {
  bool admitted = false;
  std::uint64_t id = 0;
  std::string reason;
  std::future<scaling::JobOutcome> outcome;
};

class ChipFarm {
 public:
  explicit ChipFarm(FarmConfig config = {});
  /// Serves everything still admitted, then joins the workers.
  ~ChipFarm();

  ChipFarm(const ChipFarm&) = delete;
  ChipFarm& operator=(const ChipFarm&) = delete;

  /// Admission control. Validates the job (throws PreconditionError on
  /// an empty program or zero clusters, like JobScheduler::submit),
  /// then admits, blocks, or rejects per FarmConfig::block_when_full.
  Admission submit(scaling::Job job, SubmitOptions options = {});

  /// Cancels a job still in the queue: its future resolves to a
  /// kCancelled outcome. Returns false when the job already started
  /// (running jobs are not preempted) or finished.
  bool cancel(std::uint64_t id);

  /// Freeze/unfreeze consumption (admission unaffected) — lets tests
  /// stage exact queue states.
  void pause();
  void resume();

  /// Blocks until every admitted job has been served. The farm must
  /// not be paused — except in deterministic mode, where drain()
  /// itself ends the staging pause and starts service.
  void drain();

  /// Stops admission, serves the backlog, joins workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Current farm tick: wall microseconds since construction, or the
  /// virtual cycle clock in deterministic mode.
  std::uint64_t now() const;

  std::size_t workers() const { return workers_.size(); }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Aggregated snapshot across all workers + admission counters.
  FarmMetrics metrics() const;

  /// Served outcomes in completion order (requires keep_outcome_log).
  std::vector<scaling::JobOutcome> outcome_log() const;

 private:
  struct Worker {
    std::unique_ptr<core::VlsiProcessor> chip;
    std::thread thread;
    FarmMetrics metrics;  // guarded by ChipFarm::metrics_mutex_
  };

  void worker_loop(Worker& worker);
  /// Serves one batch on one chip, reusing a single fused processor
  /// when the batch shares a cluster count.
  void serve_batch(Worker& worker, std::vector<PendingJob> batch);
  void finish_job(Worker& worker, PendingJob& pending,
                  scaling::JobOutcome outcome);
  scaling::JobOutcome cancelled_outcome(const PendingJob& pending,
                                        const std::string& why) const;

  FarmConfig config_;
  AdmissionQueue queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex metrics_mutex_;
  FarmMetrics admission_metrics_;  // submitted/rejected/cancelled
  std::vector<scaling::JobOutcome> outcome_log_;

  /// Virtual clock (deterministic mode); atomic so now() is callable
  /// from any thread.
  std::atomic<std::uint64_t> vclock_{0};
  std::atomic<std::uint64_t> next_id_{1};
  bool shut_down_ = false;
};

}  // namespace vlsip::runtime
