#include "ap/executor.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

namespace {

using arch::Opcode;
using arch::Word;

}  // namespace

Executor::Executor(const arch::Program& program, const ObjectSpace& space,
                   MemorySystem& memory, ExecConfig config, Trace* trace)
    : program_(&program),
      space_(space),
      memory_(memory),
      config_(config),
      trace_(trace) {
  VLSIP_REQUIRE(config.edge_capacity >= 1, "edge capacity must be positive");
  rebind(program);
}

void Executor::rebind(const arch::Program& program) {
  program_ = &program;
  edges_.clear();
  out_edges_.clear();
  ext_.clear();
  collected_.clear();
  wake_.clear();
  now_ = 0;
  faults_in_service_ = 0;
  pending_count_ = 0;
  iota_count_ = 0;
  max_busy_ = 0;
  nodes_.assign(program.library.size(), Node{});
  dirty_.assign(program.library.size(), 0);
  for (std::size_t i = 0; i < program.library.size(); ++i) {
    nodes_[i].object = &program.library[i];
    nodes_[i].arity = static_cast<std::uint8_t>(
        arch::op_arity(program.library[i].config.opcode));
    if (program.library[i].config.initial_token) {
      nodes_[i].has_pending = true;
      nodes_[i].pending_value = program.library[i].initial;
      nodes_[i].pending_produces = true;
      ++pending_count_;
    }
  }
  // Build edges from the configuration stream's dependencies. Out-edge
  // lists mutate during the build (re-chaining detaches stale edges), so
  // gather them per node first and flatten to CSR afterwards.
  std::vector<std::vector<std::int32_t>> outs(nodes_.size());
  for (const auto& e : program.stream.elements()) {
    for (int s = 0; s < arch::kMaxSources; ++s) {
      const arch::ObjectId src = e.sources[s];
      if (src == arch::kNoObject) continue;
      VLSIP_REQUIRE(src < nodes_.size() && e.sink < nodes_.size(),
                    "stream references unknown object");
      const auto edge_idx = static_cast<std::int32_t>(edges_.size());
      edges_.push_back(Edge{src, e.sink, s, 0, 0});
      auto& sink_node = nodes_[e.sink];
      VLSIP_REQUIRE(s < static_cast<int>(sink_node.arity),
                    "operand index exceeds opcode arity");
      std::int32_t& slot = sink_node.in_edges[static_cast<std::size_t>(s)];
      if (slot != -1) {
        // Re-chained operand: the newest chain replaces the old one
        // (the per-sink replacement of §2.6.2). Detach the stale edge
        // from its source so it cannot backpressure anyone.
        auto& stale =
            outs[edges_[static_cast<std::size_t>(slot)].source];
        stale.erase(std::find(stale.begin(), stale.end(), slot));
        slot = -1;
      }
      slot = edge_idx;
      outs[src].push_back(edge_idx);
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].out_begin = static_cast<std::uint32_t>(out_edges_.size());
    nodes_[i].out_count = static_cast<std::uint32_t>(outs[i].size());
    out_edges_.insert(out_edges_.end(), outs[i].begin(), outs[i].end());
  }
  edge_slots_.assign(
      edges_.size() * static_cast<std::size_t>(config_.edge_capacity),
      Word{});
  // External injection queues: one slot per distinct input object.
  for (const auto& [name, id] : program.inputs) {
    (void)name;
    VLSIP_REQUIRE(id < nodes_.size(), "input maps to unknown object");
    if (nodes_[id].ext_index < 0) {
      nodes_[id].ext_index = static_cast<std::int32_t>(ext_.size());
      ext_.emplace_back();
    }
  }
  // Collection buckets: one per sink object.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].object->config.opcode == Opcode::kSink) {
      nodes_[i].sink_slot = static_cast<std::int32_t>(collected_.size());
      collected_.emplace_back();
    }
  }
  active_.reset(nodes_.size());
}

void Executor::feed(const std::string& input, Word value) {
  const auto it = program_->inputs.find(input);
  VLSIP_REQUIRE(it != program_->inputs.end(), "unknown input: " + input);
  ext_[static_cast<std::size_t>(nodes_[it->second].ext_index)].buf.push_back(
      value);
}

const std::vector<Word>& Executor::output(const std::string& name) const {
  const auto it = program_->outputs.find(name);
  VLSIP_REQUIRE(it != program_->outputs.end(), "unknown output: " + name);
  static const std::vector<Word> kEmpty;
  if (it->second >= nodes_.size()) return kEmpty;
  const auto slot = nodes_[it->second].sink_slot;
  return slot < 0 ? kEmpty : collected_[static_cast<std::size_t>(slot)];
}

bool Executor::inputs_ready(const Node& node) const {
  const Opcode op = node.object->config.opcode;
  if (op == Opcode::kConst) return true;
  if (op == Opcode::kMerge) {
    for (int s = 0; s < static_cast<int>(node.arity); ++s) {
      const auto e = node.in_edges[static_cast<std::size_t>(s)];
      if (e >= 0 && edges_[static_cast<std::size_t>(e)].len > 0) return true;
    }
    return false;
  }
  for (int s = 0; s < static_cast<int>(node.arity); ++s) {
    const auto e = node.in_edges[static_cast<std::size_t>(s)];
    if (e >= 0) {
      if (edges_[static_cast<std::size_t>(e)].len == 0) return false;
    } else {
      // Unchained operand: external input port (operand 0 of an input
      // buffer). Other unchained operands can never fire.
      if (s != 0 || node.ext_index < 0 ||
          ext_[static_cast<std::size_t>(node.ext_index)].empty()) {
        return false;
      }
    }
  }
  return true;
}

bool Executor::outputs_have_space(const Node& node) const {
  const auto cap = static_cast<std::uint32_t>(config_.edge_capacity);
  for (std::uint32_t k = 0; k < node.out_count; ++k) {
    const auto e = out_edges_[node.out_begin + k];
    if (edges_[static_cast<std::size_t>(e)].len >= cap) return false;
  }
  return true;
}

Word Executor::pop_operand(Node& node, int operand) {
  const auto e = node.in_edges[static_cast<std::size_t>(operand)];
  if (e >= 0) {
    VLSIP_INVARIANT(edges_[static_cast<std::size_t>(e)].len > 0,
                    "pop of empty operand queue");
    return pop_edge(e);
  }
  auto& ext = ext_[static_cast<std::size_t>(node.ext_index)];
  VLSIP_INVARIANT(!ext.empty(), "pop of empty external queue");
  const Word w = ext.buf[ext.head++];
  if (ext.empty()) {
    ext.buf.clear();
    ext.head = 0;
  }
  return w;
}

bool Executor::compute(const Node& node, const Word* args, Word& result,
                       bool& produces, ExecStats& stats) {
  const Opcode op = node.object->config.opcode;
  produces = arch::op_produces(op);
  switch (arch::op_class(op)) {
    case arch::OpClass::kIntAlu:
    case arch::OpClass::kIntMul:
    case arch::OpClass::kIntDiv:
      ++stats.int_ops;
      break;
    case arch::OpClass::kFloat:
    case arch::OpClass::kFloatDiv:
      ++stats.float_ops;
      break;
    case arch::OpClass::kMemory:
      ++stats.mem_ops;
      break;
    default:
      ++stats.transport_ops;
      break;
  }
  switch (op) {
    // Integer add/sub/mul wrap like the hardware's two's-complement
    // datapath; compute in unsigned so the wrap is defined behaviour.
    case Opcode::kIAdd: result = arch::make_word_i(static_cast<std::int64_t>(args[0].u + args[1].u)); return true;
    case Opcode::kISub: result = arch::make_word_i(static_cast<std::int64_t>(args[0].u - args[1].u)); return true;
    case Opcode::kIMul: result = arch::make_word_i(static_cast<std::int64_t>(args[0].u * args[1].u)); return true;
    case Opcode::kIDiv:
      // Hardware divide-by-zero is defined as 0 in this model.
      result = arch::make_word_i(args[1].i == 0 ? 0 : args[0].i / args[1].i);
      return true;
    case Opcode::kIRem:
      result = arch::make_word_i(args[1].i == 0 ? 0 : args[0].i % args[1].i);
      return true;
    case Opcode::kIShl:
      result = arch::make_word_u(args[0].u << (args[1].u & 63));
      return true;
    case Opcode::kIShr:
      result = arch::make_word_u(args[0].u >> (args[1].u & 63));
      return true;
    case Opcode::kIAnd: result = arch::make_word_u(args[0].u & args[1].u); return true;
    case Opcode::kIOr: result = arch::make_word_u(args[0].u | args[1].u); return true;
    case Opcode::kIXor: result = arch::make_word_u(args[0].u ^ args[1].u); return true;
    case Opcode::kINeg: result = arch::make_word_i(-args[0].i); return true;
    case Opcode::kFAdd: result = arch::make_word_f(args[0].f + args[1].f); return true;
    case Opcode::kFSub: result = arch::make_word_f(args[0].f - args[1].f); return true;
    case Opcode::kFMul: result = arch::make_word_f(args[0].f * args[1].f); return true;
    case Opcode::kFDiv: result = arch::make_word_f(args[0].f / args[1].f); return true;
    case Opcode::kFNeg: result = arch::make_word_f(-args[0].f); return true;
    case Opcode::kCmpGt: result = arch::make_word_u(args[0].i > args[1].i); return true;
    case Opcode::kCmpLt: result = arch::make_word_u(args[0].i < args[1].i); return true;
    case Opcode::kCmpEq: result = arch::make_word_u(args[0].u == args[1].u); return true;
    case Opcode::kSelect:
      result = args[0].u ? args[1] : args[2];
      return true;
    case Opcode::kGate:
      produces = args[0].u != 0;
      result = args[1];
      return true;
    case Opcode::kGateNot:
      produces = args[0].u == 0;
      result = args[1];
      return true;
    case Opcode::kMerge:
      result = args[0];  // caller passes the arrived token as args[0]
      return true;
    case Opcode::kConst:
      result = node.object->config.immediate;
      return true;
    case Opcode::kBuff:
      result = args[0];
      return true;
    case Opcode::kIota:
      // Emission handled by the sequencer state machine; the fire only
      // latches the count.
      return false;
    case Opcode::kLoad:
      result = memory_.read(static_cast<std::size_t>(args[0].u) %
                            memory_.size());
      return true;
    case Opcode::kStore:
      memory_.write(static_cast<std::size_t>(args[0].u) % memory_.size(),
                    args[1]);
      return false;
    case Opcode::kSink:
      result = args[0];  // collected by the caller
      return true;
    case Opcode::kNop:
      return false;
  }
  return false;
}

bool Executor::try_push_pending(Node& node, std::uint64_t now,
                                ExecStats& stats) {
  // Sequencer emission: one token per cycle while the hardware loop
  // runs (kIota).
  if (node.iota_remaining > 0 && now >= node.busy_until) {
    if (!outputs_have_space(node)) return false;
    for (std::uint32_t k = 0; k < node.out_count; ++k) {
      push_edge(out_edges_[node.out_begin + k],
                arch::make_word_u(node.iota_next));
      ++stats.tokens_moved;
    }
    ++node.iota_next;
    if (--node.iota_remaining == 0) --iota_count_;
    ++stats.transport_ops;
    return true;
  }
  if (!node.has_pending || now < node.busy_until) return false;
  if (!node.pending_produces) {
    node.has_pending = false;
    --pending_count_;
    return true;
  }
  if (!outputs_have_space(node)) return false;
  for (std::uint32_t k = 0; k < node.out_count; ++k) {
    push_edge(out_edges_[node.out_begin + k], node.pending_value);
    ++stats.tokens_moved;
  }
  node.has_pending = false;
  --pending_count_;
  return true;
}

Executor::FireResult Executor::try_fire(arch::ObjectId id, Node& node,
                                        std::uint64_t now, ExecStats& stats) {
  if (node.has_pending || now < node.busy_until) return FireResult::kBlocked;
  if (node.iota_remaining > 0) return FireResult::kBlocked;  // still emitting
  if (!inputs_ready(node)) return FireResult::kBlocked;
  const Opcode op = node.object->config.opcode;
  // Result production needs queue space eventually; requiring it at fire
  // time keeps tokens from being consumed into a stuck object.
  if (arch::op_produces(op) && node.out_count > 0 &&
      !outputs_have_space(node)) {
    return FireResult::kBlocked;
  }

  // Virtual hardware: a non-resident object faults instead of firing.
  if (!space_.contains(id)) {
    if (node.fault_in_service) {
      if (now < node.bind_ready_at) {
        return FireResult::kFaultPending;  // pipeline still loading
      }
      // Service completed but the object was evicted again before it
      // could fire: free the CFB entry and re-fault on a later cycle.
      node.fault_in_service = false;
      --faults_in_service_;
      return FireResult::kEvictedRetry;
    }
    if (!config_.allow_faults || !fault_handler_) {
      stats.deadlocked = true;
      return FireResult::kFaultForbidden;
    }
    if (faults_in_service_ >= config_.fault_concurrency) {
      return FireResult::kCfbBusy;  // every CFB entry busy; retry next cycle
    }
    ++faults_in_service_;
    const std::uint64_t latency = fault_handler_(id);
    ++stats.faults;
    stats.fault_cycles += latency;
    node.fault_in_service = true;
    node.bind_ready_at = now + latency;
    if (trace_) {
      trace_->record(now, "exec",
                     "object fault " + std::to_string(id) + " (+" +
                         std::to_string(latency) + " cycles)");
    }
    return FireResult::kFaultRaised;
  }
  if (node.fault_in_service) {
    if (now < node.bind_ready_at) return FireResult::kFaultPending;
    node.fault_in_service = false;
    --faults_in_service_;
  }

  // Gather operands into a fixed-size frame — no heap traffic per fire.
  std::array<Word, arch::kMaxSources> args{};
  if (op == Opcode::kMerge) {
    // Take whichever operand arrived (lowest index first).
    for (int s = 0; s < static_cast<int>(node.arity); ++s) {
      const auto e = node.in_edges[static_cast<std::size_t>(s)];
      if (e >= 0 && edges_[static_cast<std::size_t>(e)].len > 0) {
        args[0] = pop_operand(node, s);
        break;
      }
    }
  } else {
    for (int s = 0; s < static_cast<int>(node.arity); ++s) {
      args[static_cast<std::size_t>(s)] = pop_operand(node, s);
    }
  }

  bool produces = false;
  Word result{};
  const bool has_result = compute(node, args.data(), result, produces, stats);
  ++stats.firings;

  int latency = node.object->config.latency();
  if (arch::op_class(op) == arch::OpClass::kMemory) {
    // Bank port model: the access occupies the addressed bank; a busy
    // bank delays completion (conflict), interleaved banks overlap.
    const auto addr =
        static_cast<std::size_t>(args[0].u) % memory_.size();
    const std::uint64_t done = memory_.access_at(addr, now);
    latency += static_cast<int>(done - now) + config_.memory_wire_penalty;
  }
  node.busy_until = now + static_cast<std::uint64_t>(latency);
  if (node.busy_until > max_busy_) max_busy_ = node.busy_until;

  if (op == Opcode::kIota) {
    node.iota_remaining = args[0].u;
    node.iota_next = 0;
    if (node.iota_remaining > 0) ++iota_count_;
  } else if (op == Opcode::kSink) {
    collected_[static_cast<std::size_t>(node.sink_slot)].push_back(args[0]);
  } else if (has_result && produces) {
    node.has_pending = true;
    node.pending_value = result;
    node.pending_produces = true;
    ++pending_count_;
  }
  if (op == Opcode::kBuff && node.object->config.initial_token) {
    dirty_[id] = 1;  // delay-line state evolves
  }
  if (op == Opcode::kStore) dirty_[id] = 1;
  return FireResult::kFired;
}

void Executor::process_node(std::uint32_t id, ExecStats& stats,
                            bool& progress, bool event) {
  Node& node = nodes_[id];
  if (try_push_pending(node, now_, stats)) {
    progress = true;
    if (event) {
      // Tokens landed downstream: sinks may be able to fire. An id
      // ahead of the drain cursor is scanned this same cycle, one
      // behind it next cycle — exactly the dense scan's visibility.
      for (std::uint32_t k = 0; k < node.out_count; ++k) {
        active_.insert(
            edges_[static_cast<std::size_t>(out_edges_[node.out_begin + k])]
                .sink);
      }
      if (node.iota_remaining > 0) active_.insert(id);  // emits again
    }
  }
  const FireResult fr = try_fire(static_cast<arch::ObjectId>(id), node, now_,
                                 stats);
  if (fr == FireResult::kFired) progress = true;
  if (!event) return;
  switch (fr) {
    case FireResult::kFired:
      // Operand slots freed: upstream producers may push now.
      for (int s = 0; s < static_cast<int>(node.arity); ++s) {
        const auto e = node.in_edges[static_cast<std::size_t>(s)];
        if (e >= 0) {
          active_.insert(edges_[static_cast<std::size_t>(e)].source);
        }
      }
      // Earliest next action: push/refire once the latency elapses (a
      // result latched this cycle pushes no earlier than next cycle).
      // Next-cycle wakes bypass the heap: an insert at/behind the drain
      // cursor is visited next drain, exactly when pop_due would deliver
      // it. Later wakes must go through the heap — a premature revisit
      // returns kBlocked and goes dormant, losing the wake.
      {
        const std::uint64_t when = std::max(node.busy_until, now_ + 1);
        if (when == now_ + 1) {
          active_.insert(id);
        } else {
          wake_.schedule(when, id);
        }
      }
      break;
    case FireResult::kFaultRaised: {
      const std::uint64_t when = std::max(node.bind_ready_at, now_ + 1);
      if (when == now_ + 1) {
        active_.insert(id);
      } else {
        wake_.schedule(when, id);
      }
      break;
    }
    case FireResult::kCfbBusy:
    case FireResult::kEvictedRetry:
      active_.insert(id);  // dense retries every cycle; so do we
      break;
    case FireResult::kBlocked:
    case FireResult::kFaultPending:
    case FireResult::kFaultForbidden:
      break;  // dormant until a token/space/wake event re-activates us
  }
}

bool Executor::outputs_done(std::size_t expected_per_output) const {
  if (expected_per_output == 0) return false;
  for (const auto& [name, id] : program_->outputs) {
    (void)name;
    const auto slot = id < nodes_.size() ? nodes_[id].sink_slot : -1;
    if (slot < 0 ||
        collected_[static_cast<std::size_t>(slot)].size() <
            expected_per_output) {
      return false;
    }
  }
  return !program_->outputs.empty();
}

ExecStats Executor::run(std::size_t expected_per_output,
                        std::uint64_t max_cycles) {
  // Outputs fill to exactly `expected_per_output` on the happy path;
  // reserving up front removes the collection growth reallocations.
  if (expected_per_output > 0) {
    for (auto& c : collected_) {
      if (c.capacity() < expected_per_output) c.reserve(expected_per_output);
    }
  }
  return config_.event_driven ? run_event(expected_per_output, max_cycles)
                              : run_dense(expected_per_output, max_cycles);
}

ExecStats Executor::run_dense(std::size_t expected_per_output,
                              std::uint64_t max_cycles) {
  ExecStats stats;
  const std::uint64_t start = now_;
  std::uint64_t no_progress = 0;

  while (now_ - start < max_cycles) {
    bool progress = false;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      process_node(static_cast<std::uint32_t>(id), stats, progress,
                   /*event=*/false);
    }
    ++now_;

    if (outputs_done(expected_per_output)) {
      stats.completed = true;
      break;
    }
    if (!progress) {
      ++stats.idle_cycles;
      ++no_progress;
      // Quiescence: nothing in flight anywhere.
      const bool in_flight =
          std::any_of(nodes_.begin(), nodes_.end(), [&](const Node& n) {
            return n.has_pending || n.busy_until > now_ ||
                   n.iota_remaining > 0;
          });
      if (!in_flight && expected_per_output == 0) {
        stats.completed = true;
        break;
      }
      if (no_progress > config_.deadlock_window) {
        stats.deadlocked = true;
        stats.blocked_report = diagnose();
        break;
      }
    } else {
      no_progress = 0;
    }
  }
  stats.cycles = now_ - start;
  return stats;
}

ExecStats Executor::run_event(std::size_t expected_per_output,
                              std::uint64_t max_cycles) {
  ExecStats stats;
  const std::uint64_t start = now_;
  std::uint64_t no_progress = 0;

  // Cycle `start` scans every object, exactly like the dense loop's
  // first iteration; activity narrows from the second cycle on.
  active_.fill();

  while (now_ - start < max_cycles) {
    stats.wakes += wake_.pop_due(now_, active_);
    bool progress = false;
    active_.drain_in_order([&](std::uint32_t id) {
      process_node(id, stats, progress, /*event=*/true);
    });
    ++now_;

    if (outputs_done(expected_per_output)) {
      stats.completed = true;
      break;
    }
    if (progress) {
      no_progress = 0;
      continue;
    }
    ++stats.idle_cycles;
    ++no_progress;
    // O(1) in-flight test: per-node busy_until only grows, so the
    // high-water mark is exact; pending/iota are counted at the source.
    const bool in_flight =
        pending_count_ > 0 || iota_count_ > 0 || max_busy_ > now_;
    if (!in_flight && expected_per_output == 0) {
      stats.completed = true;
      break;
    }
    if (no_progress > config_.deadlock_window) {
      stats.deadlocked = true;
      stats.blocked_report = diagnose();
      break;
    }
    if (!active_.empty()) continue;  // stay-active ids need every cycle

    // Quiescence skip: every cycle before the next wake-up would scan
    // nothing — replay the dense loop's idle bookkeeping in O(1).
    // `bound` is the first cycle the loop may NOT run; a wake at or
    // beyond it never fires inside this run.
    const std::uint64_t bound = start + max_cycles;
    const std::uint64_t limit =
        wake_.empty() ? bound : std::min(wake_.next_time(), bound);
    if (limit <= now_) continue;
    // Dense would complete after idle cycle c with now == c+1 once the
    // last busy latency expires (only busy keeps us in flight here).
    std::uint64_t c_complete = UINT64_MAX;
    if (expected_per_output == 0 && pending_count_ == 0 &&
        iota_count_ == 0 && max_busy_ > now_) {
      c_complete = max_busy_ - 1;
    }
    // ... and would deadlock after cycle c_dead when the window fills.
    const std::uint64_t c_dead =
        now_ + (config_.deadlock_window - no_progress);
    if (c_complete < limit && c_complete <= c_dead) {
      stats.idle_cycles += c_complete - now_ + 1;
      now_ = c_complete + 1;
      ++stats.quiescence_skips;
      stats.completed = true;
      break;
    }
    if (c_dead < limit) {
      stats.idle_cycles += c_dead - now_ + 1;
      now_ = c_dead + 1;
      ++stats.quiescence_skips;
      stats.deadlocked = true;
      stats.blocked_report = diagnose();
      break;
    }
    stats.idle_cycles += limit - now_;
    no_progress += limit - now_;
    now_ = limit;
    ++stats.quiescence_skips;
  }
  stats.cycles = now_ - start;
  return stats;
}

std::vector<std::string> Executor::diagnose() const {
  std::vector<std::string> report;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    const Opcode op = node.object->config.opcode;
    if (op == Opcode::kNop) continue;
    const std::string who =
        node.object->name + " (#" + std::to_string(id) + ")";

    if (node.has_pending && arch::op_produces(op) &&
        !outputs_have_space(node)) {
      // Find a full downstream edge to name.
      for (std::uint32_t k = 0; k < node.out_count; ++k) {
        const auto& edge =
            edges_[static_cast<std::size_t>(out_edges_[node.out_begin + k])];
        if (edge.len >= static_cast<std::uint32_t>(config_.edge_capacity)) {
          report.push_back(who + " holds a result but operand " +
                           std::to_string(edge.operand) + " queue of #" +
                           std::to_string(edge.sink) + " is full");
          break;
        }
      }
      continue;
    }
    if (node.has_pending) continue;  // will push when latency elapses
    if (op == Opcode::kConst || op == Opcode::kIota) continue;

    // Which operand is missing?
    for (int s = 0; s < static_cast<int>(node.arity); ++s) {
      const auto e = node.in_edges[static_cast<std::size_t>(s)];
      const bool empty =
          e >= 0 ? edges_[static_cast<std::size_t>(e)].len == 0
                 : (s != 0 || node.ext_index < 0 ||
                    ext_[static_cast<std::size_t>(node.ext_index)].empty());
      if (!empty) continue;
      if (op == Opcode::kMerge) continue;  // merge needs only one arm
      if (e >= 0) {
        report.push_back(
            who + " waits for operand " + std::to_string(s) + " from #" +
            std::to_string(edges_[static_cast<std::size_t>(e)].source));
      } else {
        report.push_back(who + " waits for external input");
      }
      break;
    }
    if (!space_.contains(static_cast<arch::ObjectId>(id)) &&
        !config_.allow_faults) {
      report.push_back(who + " is swapped out and faults are forbidden");
    }
  }
  return report;
}

std::uint64_t Executor::release_wave_depth() const {
  // Longest path in the chain DAG via Kahn's algorithm; nodes on
  // feedback cycles join the wave one step after the acyclic frontier
  // reaches them.
  std::vector<int> indegree(nodes_.size(), 0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (int s = 0; s < static_cast<int>(nodes_[n].arity); ++s) {
      if (nodes_[n].in_edges[static_cast<std::size_t>(s)] >= 0) {
        ++indegree[n];
      }
    }
  }
  std::vector<std::uint64_t> level(nodes_.size(), 1);
  std::vector<std::size_t> queue;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (indegree[n] == 0) queue.push_back(n);
  }
  std::uint64_t depth = nodes_.empty() ? 0 : 1;
  std::size_t processed = 0;
  for (std::size_t q = 0; q < queue.size(); ++q) {
    const auto n = queue[q];
    ++processed;
    depth = std::max(depth, level[n]);
    for (std::uint32_t k = 0; k < nodes_[n].out_count; ++k) {
      const auto sink =
          edges_[static_cast<std::size_t>(out_edges_[nodes_[n].out_begin + k])]
              .sink;
      level[sink] = std::max(level[sink], level[n] + 1);
      if (--indegree[sink] == 0) queue.push_back(sink);
    }
  }
  if (processed < nodes_.size()) ++depth;  // cycle members join late
  return depth;
}

std::uint64_t Executor::release() {
  // One release token per chain, fired source -> sink; receiving all of
  // its release tokens frees an object. The model tears everything down
  // in one wave.
  const std::uint64_t tokens = edges_.size();
  for (auto& e : edges_) {
    e.head = 0;
    e.len = 0;
  }
  pending_count_ = 0;
  iota_count_ = 0;
  max_busy_ = 0;
  for (auto& n : nodes_) {
    n.has_pending = false;
    n.busy_until = 0;
    n.fault_in_service = false;
    n.iota_remaining = 0;
    n.iota_next = 0;
    if (n.object->config.initial_token) {
      n.has_pending = true;
      n.pending_value = n.object->initial;
      n.pending_produces = true;
      ++pending_count_;
    }
  }
  for (auto& q : ext_) {
    q.buf.clear();
    q.head = 0;
  }
  for (auto& c : collected_) c.clear();
  active_.clear();
  wake_.clear();
  return tokens;
}

void Executor::save(snapshot::Writer& w) const {
  w.section("ap.executor");
  // Token rings: per-edge cursors plus the full slot arena. Stale slots
  // (beyond len) are reproducible machine state, so the arena is dumped
  // verbatim — re-saving a restored executor yields identical bytes.
  w.u64(edges_.size());
  for (const auto& e : edges_) {
    w.u32(e.head);
    w.u32(e.len);
  }
  w.u64(edge_slots_.size());
  for (const auto& word : edge_slots_) w.u64(word.u);
  w.u64(nodes_.size());
  for (const auto& n : nodes_) {
    w.b(n.has_pending);
    w.b(n.pending_produces);
    w.b(n.fault_in_service);
    w.u64(n.pending_value.u);
    w.u64(n.busy_until);
    w.u64(n.bind_ready_at);
    w.u64(n.iota_remaining);
    w.u64(n.iota_next);
  }
  w.u64(ext_.size());
  for (const auto& q : ext_) {
    w.u64(q.buf.size());
    for (const auto& word : q.buf) w.u64(word.u);
    w.u64(q.head);
  }
  w.u64(collected_.size());
  for (const auto& bucket : collected_) {
    w.u64(bucket.size());
    for (const auto& word : bucket) w.u64(word.u);
  }
  w.vec_u8(dirty_);
  w.u64(now_);
  w.i32(faults_in_service_);
  // Event engine: activity bitwords verbatim; wake heap in raw array
  // order (see WakeQueue::for_each) so pop order survives the restore.
  w.u64(active_.size());
  w.vec_u64(active_.words());
  w.u64(wake_.size());
  wake_.for_each([&w](std::uint64_t when, std::uint32_t id) {
    w.u64(when);
    w.u32(id);
  });
  w.u64(pending_count_);
  w.u64(iota_count_);
  w.u64(max_busy_);
}

void Executor::restore(snapshot::Reader& r) {
  r.section("ap.executor");
  const std::uint64_t n_edges = r.u64();
  VLSIP_REQUIRE(n_edges == edges_.size(),
                "snapshot executor edge count mismatch (wrong program?)");
  for (auto& e : edges_) {
    e.head = r.u32();
    e.len = r.u32();
  }
  const std::uint64_t n_slots = r.u64();
  VLSIP_REQUIRE(n_slots == edge_slots_.size(),
                "snapshot executor slot arena mismatch");
  for (auto& word : edge_slots_) word = arch::make_word_u(r.u64());
  const std::uint64_t n_nodes = r.u64();
  VLSIP_REQUIRE(n_nodes == nodes_.size(),
                "snapshot executor node count mismatch (wrong program?)");
  for (auto& n : nodes_) {
    n.has_pending = r.b();
    n.pending_produces = r.b();
    n.fault_in_service = r.b();
    n.pending_value = arch::make_word_u(r.u64());
    n.busy_until = r.u64();
    n.bind_ready_at = r.u64();
    n.iota_remaining = r.u64();
    n.iota_next = r.u64();
  }
  const std::uint64_t n_ext = r.u64();
  VLSIP_REQUIRE(n_ext == ext_.size(), "snapshot executor input-port mismatch");
  for (auto& q : ext_) {
    const std::uint64_t len = r.count(8);
    q.buf.clear();
    q.buf.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t i = 0; i < len; ++i) {
      q.buf.push_back(arch::make_word_u(r.u64()));
    }
    q.head = static_cast<std::size_t>(r.u64());
  }
  const std::uint64_t n_sinks = r.u64();
  VLSIP_REQUIRE(n_sinks == collected_.size(),
                "snapshot executor output-port mismatch");
  for (auto& bucket : collected_) {
    const std::uint64_t len = r.count(8);
    bucket.clear();
    bucket.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t i = 0; i < len; ++i) {
      bucket.push_back(arch::make_word_u(r.u64()));
    }
  }
  dirty_ = r.vec_u8();
  VLSIP_REQUIRE(dirty_.size() == nodes_.size(),
                "snapshot executor dirty-flag mismatch");
  now_ = r.u64();
  faults_in_service_ = r.i32();
  const std::uint64_t active_size = r.u64();
  VLSIP_REQUIRE(active_size == nodes_.size(),
                "snapshot executor activity-set mismatch");
  active_.restore_words(static_cast<std::size_t>(active_size), r.vec_u64());
  wake_.clear();
  const std::uint64_t n_wakes = r.count(12);
  for (std::uint64_t i = 0; i < n_wakes; ++i) {
    const std::uint64_t when = r.u64();
    const std::uint32_t id = r.u32();
    wake_.push_raw(when, id);
  }
  pending_count_ = static_cast<std::size_t>(r.u64());
  iota_count_ = static_cast<std::size_t>(r.u64());
  max_busy_ = r.u64();
}

void save_exec_stats(snapshot::Writer& w, const ExecStats& stats) {
  w.section("ap.exec_stats");
  w.u64(stats.cycles);
  w.u64(stats.firings);
  w.u64(stats.tokens_moved);
  w.u64(stats.int_ops);
  w.u64(stats.float_ops);
  w.u64(stats.mem_ops);
  w.u64(stats.transport_ops);
  w.u64(stats.faults);
  w.u64(stats.fault_cycles);
  w.u64(stats.release_tokens);
  w.u64(stats.idle_cycles);
  w.u64(stats.wakes);
  w.u64(stats.quiescence_skips);
  w.b(stats.deadlocked);
  w.b(stats.completed);
  w.u64(stats.blocked_report.size());
  for (const auto& line : stats.blocked_report) w.str(line);
}

ExecStats restore_exec_stats(snapshot::Reader& r) {
  r.section("ap.exec_stats");
  ExecStats stats;
  stats.cycles = r.u64();
  stats.firings = r.u64();
  stats.tokens_moved = r.u64();
  stats.int_ops = r.u64();
  stats.float_ops = r.u64();
  stats.mem_ops = r.u64();
  stats.transport_ops = r.u64();
  stats.faults = r.u64();
  stats.fault_cycles = r.u64();
  stats.release_tokens = r.u64();
  stats.idle_cycles = r.u64();
  stats.wakes = r.u64();
  stats.quiescence_skips = r.u64();
  stats.deadlocked = r.b();
  stats.completed = r.b();
  const std::uint64_t n = r.count(8);
  stats.blocked_report.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    stats.blocked_report.push_back(r.str());
  }
  return stats;
}

}  // namespace vlsip::ap
