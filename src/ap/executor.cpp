#include "ap/executor.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace vlsip::ap {

namespace {

using arch::Opcode;
using arch::Word;

}  // namespace

Executor::Executor(const arch::Program& program, const ObjectSpace& space,
                   MemorySystem& memory, ExecConfig config, Trace* trace)
    : program_(program),
      space_(space),
      memory_(memory),
      config_(config),
      trace_(trace) {
  VLSIP_REQUIRE(config.edge_capacity >= 1, "edge capacity must be positive");
  nodes_.resize(program.library.size());
  dirty_.assign(program.library.size(), false);
  for (std::size_t i = 0; i < program.library.size(); ++i) {
    nodes_[i].object = &program.library[i];
    const int arity = arch::op_arity(program.library[i].config.opcode);
    nodes_[i].in_edges.assign(static_cast<std::size_t>(arity), -1);
    if (program.library[i].config.initial_token) {
      nodes_[i].pending = program.library[i].initial;
      nodes_[i].pending_produces = true;
    }
  }
  // Build edges from the configuration stream's dependencies.
  for (const auto& e : program.stream.elements()) {
    for (int s = 0; s < arch::kMaxSources; ++s) {
      const arch::ObjectId src = e.sources[s];
      if (src == arch::kNoObject) continue;
      VLSIP_REQUIRE(src < nodes_.size() && e.sink < nodes_.size(),
                    "stream references unknown object");
      const int edge_idx = static_cast<int>(edges_.size());
      edges_.push_back(Edge{src, e.sink, s, {}});
      auto& sink_node = nodes_[e.sink];
      VLSIP_REQUIRE(
          s < static_cast<int>(sink_node.in_edges.size()),
          "operand index exceeds opcode arity");
      int& slot = sink_node.in_edges[static_cast<std::size_t>(s)];
      if (slot != -1) {
        // Re-chained operand: the newest chain replaces the old one
        // (the per-sink replacement of §2.6.2). Detach the stale edge
        // from its source so it cannot backpressure anyone.
        auto& outs = nodes_[edges_[static_cast<std::size_t>(slot)].source]
                         .out_edges;
        outs.erase(std::find(outs.begin(), outs.end(), slot));
        slot = -1;
      }
      slot = edge_idx;
      nodes_[src].out_edges.push_back(edge_idx);
    }
  }
}

void Executor::feed(const std::string& input, Word value) {
  const auto it = program_.inputs.find(input);
  VLSIP_REQUIRE(it != program_.inputs.end(), "unknown input: " + input);
  external_[it->second].push_back(value);
}

const std::vector<Word>& Executor::output(const std::string& name) const {
  const auto it = program_.outputs.find(name);
  VLSIP_REQUIRE(it != program_.outputs.end(), "unknown output: " + name);
  static const std::vector<Word> kEmpty;
  const auto col = collected_.find(it->second);
  return col == collected_.end() ? kEmpty : col->second;
}

bool Executor::inputs_ready(const Node& node) const {
  const Opcode op = node.object->config.opcode;
  if (op == Opcode::kConst) return true;
  if (op == Opcode::kMerge) {
    for (int e : node.in_edges) {
      if (e >= 0 && !edges_[static_cast<std::size_t>(e)].queue.empty()) {
        return true;
      }
    }
    return false;
  }
  for (std::size_t operand = 0; operand < node.in_edges.size(); ++operand) {
    const int e = node.in_edges[operand];
    if (e >= 0) {
      if (edges_[static_cast<std::size_t>(e)].queue.empty()) return false;
    } else {
      // Unchained operand: external input port (operand 0 of an input
      // buffer). Other unchained operands can never fire.
      const auto ext = external_.find(node.object->id);
      if (operand != 0 || ext == external_.end() || ext->second.empty()) {
        return false;
      }
    }
  }
  return true;
}

bool Executor::outputs_have_space(const Node& node) const {
  return std::all_of(
      node.out_edges.begin(), node.out_edges.end(), [this](int e) {
        return edges_[static_cast<std::size_t>(e)].queue.size() <
               static_cast<std::size_t>(config_.edge_capacity);
      });
}

Word Executor::pop_operand(Node& node, int operand) {
  const int e = node.in_edges[static_cast<std::size_t>(operand)];
  if (e >= 0) {
    auto& q = edges_[static_cast<std::size_t>(e)].queue;
    VLSIP_INVARIANT(!q.empty(), "pop of empty operand queue");
    const Word w = q.front();
    q.pop_front();
    return w;
  }
  auto& ext = external_[node.object->id];
  VLSIP_INVARIANT(!ext.empty(), "pop of empty external queue");
  const Word w = ext.front();
  ext.pop_front();
  return w;
}

std::optional<Word> Executor::compute(const Node& node,
                                      const std::vector<Word>& args,
                                      bool& produces, ExecStats& stats) {
  const Opcode op = node.object->config.opcode;
  produces = arch::op_produces(op);
  switch (arch::op_class(op)) {
    case arch::OpClass::kIntAlu:
    case arch::OpClass::kIntMul:
    case arch::OpClass::kIntDiv:
      ++stats.int_ops;
      break;
    case arch::OpClass::kFloat:
    case arch::OpClass::kFloatDiv:
      ++stats.float_ops;
      break;
    case arch::OpClass::kMemory:
      ++stats.mem_ops;
      break;
    default:
      ++stats.transport_ops;
      break;
  }
  switch (op) {
    case Opcode::kIAdd: return arch::make_word_i(args[0].i + args[1].i);
    case Opcode::kISub: return arch::make_word_i(args[0].i - args[1].i);
    case Opcode::kIMul: return arch::make_word_i(args[0].i * args[1].i);
    case Opcode::kIDiv:
      // Hardware divide-by-zero is defined as 0 in this model.
      return arch::make_word_i(args[1].i == 0 ? 0 : args[0].i / args[1].i);
    case Opcode::kIRem:
      return arch::make_word_i(args[1].i == 0 ? 0 : args[0].i % args[1].i);
    case Opcode::kIShl:
      return arch::make_word_u(args[0].u << (args[1].u & 63));
    case Opcode::kIShr:
      return arch::make_word_u(args[0].u >> (args[1].u & 63));
    case Opcode::kIAnd: return arch::make_word_u(args[0].u & args[1].u);
    case Opcode::kIOr: return arch::make_word_u(args[0].u | args[1].u);
    case Opcode::kIXor: return arch::make_word_u(args[0].u ^ args[1].u);
    case Opcode::kINeg: return arch::make_word_i(-args[0].i);
    case Opcode::kFAdd: return arch::make_word_f(args[0].f + args[1].f);
    case Opcode::kFSub: return arch::make_word_f(args[0].f - args[1].f);
    case Opcode::kFMul: return arch::make_word_f(args[0].f * args[1].f);
    case Opcode::kFDiv: return arch::make_word_f(args[0].f / args[1].f);
    case Opcode::kFNeg: return arch::make_word_f(-args[0].f);
    case Opcode::kCmpGt: return arch::make_word_u(args[0].i > args[1].i);
    case Opcode::kCmpLt: return arch::make_word_u(args[0].i < args[1].i);
    case Opcode::kCmpEq: return arch::make_word_u(args[0].u == args[1].u);
    case Opcode::kSelect:
      return args[0].u ? args[1] : args[2];
    case Opcode::kGate:
      produces = args[0].u != 0;
      return args[1];
    case Opcode::kGateNot:
      produces = args[0].u == 0;
      return args[1];
    case Opcode::kMerge:
      return args[0];  // caller passes the arrived token as args[0]
    case Opcode::kConst:
      return node.object->config.immediate;
    case Opcode::kBuff:
      return args[0];
    case Opcode::kIota:
      // Emission handled by the sequencer state machine; the fire only
      // latches the count.
      return std::nullopt;
    case Opcode::kLoad:
      return memory_.read(static_cast<std::size_t>(args[0].u) %
                          memory_.size());
    case Opcode::kStore:
      memory_.write(static_cast<std::size_t>(args[0].u) % memory_.size(),
                    args[1]);
      return std::nullopt;
    case Opcode::kSink:
      return args[0];  // collected by the caller
    case Opcode::kNop:
      return std::nullopt;
  }
  return std::nullopt;
}

bool Executor::try_push_pending(Node& node, std::uint64_t now,
                                ExecStats& stats) {
  // Sequencer emission: one token per cycle while the hardware loop
  // runs (kIota).
  if (node.iota_remaining > 0 && now >= node.busy_until) {
    if (!outputs_have_space(node)) return false;
    for (int e : node.out_edges) {
      edges_[static_cast<std::size_t>(e)].queue.push_back(
          arch::make_word_u(node.iota_next));
      ++stats.tokens_moved;
    }
    ++node.iota_next;
    --node.iota_remaining;
    ++stats.transport_ops;
    return true;
  }
  if (!node.pending || now < node.busy_until) return false;
  if (!node.pending_produces) {
    node.pending.reset();
    return true;
  }
  if (!outputs_have_space(node)) return false;
  for (int e : node.out_edges) {
    edges_[static_cast<std::size_t>(e)].queue.push_back(*node.pending);
    ++stats.tokens_moved;
  }
  node.pending.reset();
  return true;
}

bool Executor::try_fire(arch::ObjectId id, Node& node, std::uint64_t now,
                        ExecStats& stats) {
  if (node.pending || now < node.busy_until) return false;
  if (node.iota_remaining > 0) return false;  // still emitting
  if (!inputs_ready(node)) return false;
  const Opcode op = node.object->config.opcode;
  // Result production needs queue space eventually; requiring it at fire
  // time keeps tokens from being consumed into a stuck object.
  if (arch::op_produces(op) && !node.out_edges.empty() &&
      !outputs_have_space(node)) {
    return false;
  }

  // Virtual hardware: a non-resident object faults instead of firing.
  if (!space_.contains(id)) {
    if (node.fault_in_service) {
      if (now < node.bind_ready_at) {
        return false;  // waiting for the pipeline to finish the load
      }
      // Service completed but the object was evicted again before it
      // could fire: free the CFB entry and re-fault on a later cycle.
      node.fault_in_service = false;
      --faults_in_service_;
      return false;
    }
    if (!config_.allow_faults || !fault_handler_) {
      stats.deadlocked = true;
      return false;
    }
    if (faults_in_service_ >= config_.fault_concurrency) {
      return false;  // every CFB entry busy; retry next cycle
    }
    ++faults_in_service_;
    const std::uint64_t latency = fault_handler_(id);
    ++stats.faults;
    stats.fault_cycles += latency;
    node.fault_in_service = true;
    node.bind_ready_at = now + latency;
    if (trace_) {
      trace_->record(now, "exec",
                     "object fault " + std::to_string(id) + " (+" +
                         std::to_string(latency) + " cycles)");
    }
    return false;
  }
  if (node.fault_in_service) {
    if (now < node.bind_ready_at) return false;
    node.fault_in_service = false;
    --faults_in_service_;
  }

  // Gather operands.
  std::vector<Word> args;
  if (op == Opcode::kMerge) {
    // Take whichever operand arrived (lowest index first).
    for (std::size_t operand = 0; operand < node.in_edges.size(); ++operand) {
      const int e = node.in_edges[operand];
      if (e >= 0 && !edges_[static_cast<std::size_t>(e)].queue.empty()) {
        args.push_back(pop_operand(node, static_cast<int>(operand)));
        break;
      }
    }
  } else {
    for (std::size_t operand = 0; operand < node.in_edges.size(); ++operand) {
      args.push_back(pop_operand(node, static_cast<int>(operand)));
    }
  }

  bool produces = false;
  const auto result = compute(node, args, produces, stats);
  ++stats.firings;

  int latency = node.object->config.latency();
  if (arch::op_class(op) == arch::OpClass::kMemory) {
    // Bank port model: the access occupies the addressed bank; a busy
    // bank delays completion (conflict), interleaved banks overlap.
    const auto addr =
        static_cast<std::size_t>(args[0].u) % memory_.size();
    const std::uint64_t done = memory_.access_at(addr, now);
    latency += static_cast<int>(done - now) + config_.memory_wire_penalty;
  }
  node.busy_until = now + static_cast<std::uint64_t>(latency);

  if (op == Opcode::kIota) {
    node.iota_remaining = args[0].u;
    node.iota_next = 0;
  } else if (op == Opcode::kSink) {
    collected_[id].push_back(args[0]);
  } else if (result.has_value() && produces) {
    node.pending = *result;
    node.pending_produces = true;
  } else if (result.has_value() && !produces) {
    // Gated-off token: consumed, nothing forwarded.
    node.pending.reset();
  }
  if (op == Opcode::kBuff && node.object->config.initial_token) {
    dirty_[id] = true;  // delay-line state evolves
  }
  if (op == Opcode::kStore) dirty_[id] = true;
  return true;
}

ExecStats Executor::run(std::size_t expected_per_output,
                        std::uint64_t max_cycles) {
  ExecStats stats;
  const std::uint64_t start = now_;
  std::uint64_t no_progress = 0;

  auto outputs_done = [&]() {
    if (expected_per_output == 0) return false;
    for (const auto& [name, id] : program_.outputs) {
      (void)name;
      const auto it = collected_.find(id);
      if (it == collected_.end() || it->second.size() < expected_per_output) {
        return false;
      }
    }
    return !program_.outputs.empty();
  };

  while (now_ - start < max_cycles) {
    bool progress = false;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      Node& node = nodes_[id];
      if (try_push_pending(node, now_, stats)) progress = true;
      if (try_fire(static_cast<arch::ObjectId>(id), node, now_, stats)) {
        progress = true;
      }
    }
    ++now_;

    if (outputs_done()) {
      stats.completed = true;
      break;
    }
    if (!progress) {
      ++stats.idle_cycles;
      ++no_progress;
      // Quiescence: nothing in flight anywhere.
      const bool in_flight =
          std::any_of(nodes_.begin(), nodes_.end(), [&](const Node& n) {
            return n.pending.has_value() || n.busy_until > now_ ||
                   n.iota_remaining > 0;
          });
      if (!in_flight && expected_per_output == 0) {
        stats.completed = true;
        break;
      }
      if (no_progress > config_.deadlock_window) {
        stats.deadlocked = true;
        stats.blocked_report = diagnose();
        break;
      }
    } else {
      no_progress = 0;
    }
  }
  stats.cycles = now_ - start;
  return stats;
}

std::vector<std::string> Executor::diagnose() const {
  std::vector<std::string> report;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    const Opcode op = node.object->config.opcode;
    if (op == Opcode::kNop) continue;
    const std::string who =
        node.object->name + " (#" + std::to_string(id) + ")";

    if (node.pending && arch::op_produces(op) && !outputs_have_space(node)) {
      // Find a full downstream edge to name.
      for (int e : node.out_edges) {
        const auto& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.queue.size() >=
            static_cast<std::size_t>(config_.edge_capacity)) {
          report.push_back(who + " holds a result but operand " +
                           std::to_string(edge.operand) + " queue of #" +
                           std::to_string(edge.sink) + " is full");
          break;
        }
      }
      continue;
    }
    if (node.pending) continue;  // will push when latency elapses
    if (op == Opcode::kConst || op == Opcode::kIota) continue;

    // Which operand is missing?
    for (std::size_t operand = 0; operand < node.in_edges.size();
         ++operand) {
      const int e = node.in_edges[operand];
      const bool empty =
          e >= 0 ? edges_[static_cast<std::size_t>(e)].queue.empty()
                 : [&] {
                     const auto ext = external_.find(node.object->id);
                     return operand != 0 || ext == external_.end() ||
                            ext->second.empty();
                   }();
      if (!empty) continue;
      if (op == Opcode::kMerge) continue;  // merge needs only one arm
      if (e >= 0) {
        report.push_back(
            who + " waits for operand " + std::to_string(operand) +
            " from #" +
            std::to_string(edges_[static_cast<std::size_t>(e)].source));
      } else {
        report.push_back(who + " waits for external input");
      }
      break;
    }
    if (!space_.contains(static_cast<arch::ObjectId>(id)) &&
        !config_.allow_faults) {
      report.push_back(who + " is swapped out and faults are forbidden");
    }
  }
  return report;
}

std::uint64_t Executor::release_wave_depth() const {
  // Longest path in the chain DAG via Kahn's algorithm; nodes on
  // feedback cycles join the wave one step after the acyclic frontier
  // reaches them.
  std::vector<int> indegree(nodes_.size(), 0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const int e : nodes_[n].in_edges) {
      if (e >= 0) ++indegree[n];
    }
  }
  std::vector<std::uint64_t> level(nodes_.size(), 1);
  std::vector<std::size_t> queue;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (indegree[n] == 0) queue.push_back(n);
  }
  std::uint64_t depth = nodes_.empty() ? 0 : 1;
  std::size_t processed = 0;
  for (std::size_t q = 0; q < queue.size(); ++q) {
    const auto n = queue[q];
    ++processed;
    depth = std::max(depth, level[n]);
    for (const int e : nodes_[n].out_edges) {
      const auto sink = edges_[static_cast<std::size_t>(e)].sink;
      level[sink] = std::max(level[sink], level[n] + 1);
      if (--indegree[sink] == 0) queue.push_back(sink);
    }
  }
  if (processed < nodes_.size()) ++depth;  // cycle members join late
  return depth;
}

std::uint64_t Executor::release() {
  // One release token per chain, fired source -> sink; receiving all of
  // its release tokens frees an object. The model tears everything down
  // in one wave.
  const std::uint64_t tokens = edges_.size();
  for (auto& e : edges_) e.queue.clear();
  for (auto& n : nodes_) {
    n.pending.reset();
    n.busy_until = 0;
    n.fault_in_service = false;
    n.iota_remaining = 0;
    n.iota_next = 0;
    if (n.object->config.initial_token) {
      n.pending = n.object->initial;
      n.pending_produces = true;
    }
  }
  external_.clear();
  collected_.clear();
  return tokens;
}

}  // namespace vlsip::ap
