#include "ap/replacement.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

ReplacementScheduler::ReplacementScheduler(ReplacementConfig config)
    : config_(config),
      port_free_at_(static_cast<std::size_t>(config.ports), 0) {
  VLSIP_REQUIRE(config.ports >= 1, "need at least one write-back port");
  VLSIP_REQUIRE(config.write_back_latency >= 1,
                "write-back latency must be positive");
}

std::uint64_t ReplacementScheduler::schedule_write_back(
    arch::ObjectId victim, std::uint64_t now) {
  VLSIP_REQUIRE(victim != arch::kNoObject, "victim must be a real object");
  // Earliest-free port wins (the table entry).
  auto it = std::min_element(port_free_at_.begin(), port_free_at_.end());
  const std::uint64_t start = std::max(*it, now);
  *it = start + static_cast<std::uint64_t>(config_.write_back_latency);
  ++scheduled_;
  stall_cycles_ += start - now;
  return start;
}

std::uint64_t ReplacementScheduler::drained_at() const {
  return *std::max_element(port_free_at_.begin(), port_free_at_.end());
}

int ReplacementScheduler::busy_ports_at(std::uint64_t t) const {
  return static_cast<int>(std::count_if(
      port_free_at_.begin(), port_free_at_.end(),
      [t](std::uint64_t free_at) { return free_at > t; }));
}

void ReplacementScheduler::save(snapshot::Writer& w) const {
  w.section("ap.replacement");
  w.vec_u64(port_free_at_);
  w.u64(scheduled_);
  w.u64(stall_cycles_);
}

void ReplacementScheduler::restore(snapshot::Reader& r) {
  r.section("ap.replacement");
  port_free_at_ = r.vec_u64();
  VLSIP_REQUIRE(port_free_at_.size() ==
                    static_cast<std::size_t>(config_.ports),
                "snapshot replacement port count mismatch");
  scheduled_ = static_cast<std::size_t>(r.u64());
  stall_cycles_ = r.u64();
}

}  // namespace vlsip::ap
