// The adaptive processor (paper §2): the facade that ties together the
// object space, WSRF, library, configuration pipeline, dynamic CSD
// network and dataflow executor.
//
// An AP is the unit the VLSI processor scales: a minimum AP has 16
// physical objects and 16 memory objects (§4.1); fusing clusters yields
// an AP with a larger capacity C. The AP configures application
// datapaths from global configuration streams, executes them as token
// dataflow, supports virtual hardware (object swap-in/out) for scalar
// workloads, and enforces the streaming constraint (datapath <= C, §2.5).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "arch/datapath.hpp"
#include "ap/executor.hpp"
#include "ap/memory_block.hpp"
#include "ap/object_space.hpp"
#include "ap/pipeline.hpp"
#include "ap/wsrf.hpp"
#include "common/trace.hpp"
#include "csd/dynamic_csd.hpp"
#include "obs/metrics.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

struct ApConfig {
  /// C — the object-space capacity (physical objects on the stack).
  int capacity = 16;
  /// Memory objects beside the stack (the 1:1 ratio of §4.1's minimum
  /// AP). They occupy CSD positions past the stack region.
  int memory_blocks = 16;
  /// Dynamic CSD channels; 0 = auto (capacity/2 + fan-out reserve =
  /// capacity, the provisioning §2.6.2 recommends).
  int csd_channels = 0;
  int wsrf_capacity = 40;
  int library_load_latency = 8;
  PipelineConfig pipeline;
  ExecConfig exec;
  MemoryBlockConfig memory;
  ReplacementConfig replacement;
  bool enable_trace = false;
};

/// Cumulative counters across the AP's lifetime.
struct ApStats {
  ConfigStats config;     // aggregated over configure() calls
  ConfigStats faults;     // virtual-hardware fault servicing
  std::uint64_t datapaths_configured = 0;
  std::uint64_t releases = 0;
  std::uint64_t release_tokens = 0;
  /// Cycles spent sweeping release waves (dependency-depth each, §2.2).
  std::uint64_t release_wave_cycles = 0;
  /// Lifetime execution totals, accumulated over every run() /
  /// run_streaming() call (each call still returns its own ExecStats).
  ExecStats exec;
  std::uint64_t runs = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t runs_deadlocked = 0;
};

class AdaptiveProcessor {
 public:
  explicit AdaptiveProcessor(ApConfig config = {});

  int capacity() const { return config_.capacity; }
  const ApConfig& config() const { return config_; }

  /// Loads the program's logical objects into the library and runs the
  /// configuration pipeline over its global configuration stream.
  /// Replaces any previously configured datapath (releasing it first).
  ConfigStats configure(const arch::Program& program);

  /// True if the datapath fits residency for streaming (§2.5: streaming
  /// "does not allow swapping out part of the datapath").
  bool fits_streaming(const arch::Program& program) const;

  /// Writes the binary-encoded configuration stream into this AP's
  /// memory at `base_address` (what a predecessor does to an inactive
  /// follower, §3.3). Returns the number of words written.
  std::size_t store_stream(std::size_t base_address,
                           const arch::ConfigStream& stream);

  /// Configures from a stream resident in the memory blocks: the
  /// pointer-update / request-fetch stages read one word per element
  /// from the banked SRAM (latency and bank conflicts charged as
  /// stream_fetch_cycles). `library_program` supplies the logical
  /// objects and port bindings; its own stream is ignored.
  ConfigStats configure_from_memory(const arch::Program& library_program,
                                    std::size_t base_address,
                                    std::size_t n_elements);

  /// Injects a token into a named input of the configured datapath.
  void feed(const std::string& input, arch::Word value);

  /// Runs the configured datapath. Scalar mode (faults allowed).
  ExecStats run(std::size_t expected_per_output, std::uint64_t max_cycles);

  /// Runs with faults forbidden; requires fits_streaming() at configure
  /// time (PreconditionError otherwise).
  ExecStats run_streaming(std::size_t expected_per_output,
                          std::uint64_t max_cycles);

  /// Output tokens collected at a named output.
  const std::vector<arch::Word>& output(const std::string& name) const;

  /// Fires the release tokens and frees the datapath. Resident objects
  /// stay cached in the object space (object caching, §2.4), so a
  /// re-configuration of an overlapping datapath hits.
  void release_datapath();

  /// A physical object on the stack went defective: capacity C shrinks
  /// by one, the LRU object is evicted if the stack was full, and its
  /// chains are re-resolved. Execution continues (the evicted object
  /// re-enters via a fault). Returns the evicted object, if any.
  std::optional<arch::ObjectId> handle_defective_object();

  bool has_datapath() const { return program_.has_value(); }

  const ObjectSpace& object_space() const { return space_; }
  const Wsrf& wsrf() const { return wsrf_; }
  const csd::DynamicCsdNetwork& network() const { return network_; }
  /// Mutable network access for fault injection (segment kills). The
  /// configured datapath keeps running on whatever the reroute leaves.
  csd::DynamicCsdNetwork& network_mut() { return network_; }
  const ChainSet& chains() const { return chains_; }
  const ObjectLibrary& library() const { return library_; }
  const ReplacementScheduler& replacement() const { return scheduler_; }
  MemorySystem& memory() { return memory_; }
  const ApStats& stats() const { return stats_; }
  Trace& trace() { return trace_; }

  /// Publishes the AP's lifetime counters into `registry` under
  /// "<prefix>..." names (configuration pipeline, executor, network,
  /// memory) — the observability-spine probe for this layer.
  void export_obs(obs::MetricRegistry& registry,
                  const std::string& prefix = "ap.") const;

  /// Folds the AP's lifetime activity into `a` (energy spine,
  /// costmodel/energy.hpp): executor op mix, active/idle cycle split,
  /// configuration-pipeline cycles, and the CSD network's handshake
  /// traffic. Sources are exactly the serialized ApStats counters the
  /// dense/event differential wall pins — never the event-engine-only
  /// telemetry (wakes, quiescence skips) — so the fold is bit-identical
  /// across engines and across checkpoint/resume.
  void fold_energy(cost::EnergyActivity& a) const;

  /// Multi-line human-readable summary of the AP's lifetime statistics
  /// (configuration, execution-side servicing, network, memory).
  std::string report() const;

  /// Checkpoints the complete machine state — object placement, WSRF,
  /// library, CSD claims, chains, replacement ports, memory contents,
  /// the configured program and the executor's in-flight tokens, plus
  /// lifetime stats. Trace contents are telemetry and excluded.
  void save(snapshot::Writer& w) const;

  /// Restores into an AP constructed with the *same* ApConfig the saved
  /// one started from (geometry is fingerprint-checked; SnapshotError
  /// on mismatch). After restore, continuing a run is bit-identical to
  /// never having stopped. configure() is NOT re-run — the pipeline
  /// state comes verbatim from the snapshot.
  void restore(snapshot::Reader& r);

 private:
  static csd::CsdConfig make_csd_config(const ApConfig& config);
  /// Folds one run's ExecStats into the lifetime totals.
  void accumulate_exec(const ExecStats& stats);
  /// Installs the dirty-probe and fault-handler callbacks that bridge
  /// the executor and the configuration pipeline. Shared between
  /// configure() and restore() so both paths wire identical hooks.
  void install_execution_hooks();

  ApConfig config_;
  Trace trace_;
  ObjectSpace space_;
  Wsrf wsrf_;
  ObjectLibrary library_;
  csd::DynamicCsdNetwork network_;
  ChainSet chains_;
  ReplacementScheduler scheduler_;
  ConfigurationPipeline pipeline_;
  MemorySystem memory_;
  std::optional<arch::Program> program_;
  std::unique_ptr<Executor> executor_;
  /// Released executor kept for arena reuse: the next configure()
  /// rebinds it instead of reallocating every queue and table.
  std::unique_ptr<Executor> spare_;
  ApStats stats_;
};

}  // namespace vlsip::ap
