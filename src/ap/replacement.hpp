// The replacement scheduling table (paper §2.5): "The replacement is
// scheduled using a special interconnection network composing a
// scheduling table."
//
// When the object space is full, the victim's state must be written back
// to the library in a memory block before its slot can be reused. Doing
// that inline would stall the configuration pipeline for the whole
// write-back; the scheduling table instead queues the write-back on one
// of a small number of ports (the special interconnection network) and
// releases the slot immediately — the pipeline only stalls when every
// port is already busy.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/object.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

struct ReplacementConfig {
  /// Concurrent write-back ports on the scheduling network.
  int ports = 2;
  /// Cycles to drain one object's state to a memory block.
  int write_back_latency = 8;
};

class ReplacementScheduler {
 public:
  explicit ReplacementScheduler(ReplacementConfig config = {});

  /// Schedules the victim's write-back at (or after) cycle `now`.
  /// Returns the cycle at which the pipeline may proceed: `now` if a
  /// port was free, later if it had to wait for one. The write-back
  /// itself continues in the background after that point.
  std::uint64_t schedule_write_back(arch::ObjectId victim,
                                    std::uint64_t now);

  /// Cycle at which every scheduled write-back has drained.
  std::uint64_t drained_at() const;

  /// Ports still busy at cycle `t`.
  int busy_ports_at(std::uint64_t t) const;

  std::size_t scheduled() const { return scheduled_; }
  std::uint64_t stall_cycles() const { return stall_cycles_; }

  const ReplacementConfig& config() const { return config_; }

  /// Checkpoint codec.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  ReplacementConfig config_;
  /// port_free_at_[p]: cycle at which port p finishes its write-back.
  std::vector<std::uint64_t> port_free_at_;
  std::size_t scheduled_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace vlsip::ap
