#include "ap/pipeline.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

ChainSet::ChainSet(csd::DynamicCsdNetwork& network, const ObjectSpace& space)
    : network_(network), space_(space) {}

void ChainSet::add(arch::ObjectId source, arch::ObjectId sink, int operand) {
  VLSIP_REQUIRE(source != sink, "self-chains are meaningless");
  chains_.push_back(Chain{source, sink, operand, csd::kNoRoute});
  chains_dirty_ = true;
}

void ChainSet::remove_for(arch::ObjectId id) {
  for (auto& c : chains_) {
    if ((c.source == id || c.sink == id) && c.routed()) {
      network_.release(c.route);
      c.route = csd::kNoRoute;
    }
  }
  std::erase_if(chains_,
                [id](const Chain& c) { return c.source == id || c.sink == id; });
  chains_dirty_ = true;
}

void ChainSet::clear() {
  for (auto& c : chains_) {
    if (c.routed()) network_.release(c.route);
  }
  chains_.clear();
  chains_dirty_ = true;
}

std::size_t ChainSet::refresh() {
  // Nothing moved, no claims changed, no chains added or dropped: the
  // pass would release nothing and re-attempt exactly the failures of
  // last time. Return the cached count without touching the network.
  if (!chains_dirty_ && seen_space_version_ == space_.version() &&
      seen_net_version_ == network_.version()) {
    return last_failures_;
  }
  ++rebuilds_;
  // Pass 1: release routes that are stale (endpoint moved or swapped
  // out) so their channels are available for pass 2.
  for (auto& c : chains_) {
    if (!c.routed()) continue;
    const auto src_pos = space_.find(c.source);
    const auto dst_pos = space_.find(c.sink);
    const auto& route = network_.routes()[c.route];
    const bool stale =
        !src_pos || !dst_pos ||
        route.source != static_cast<csd::Position>(*src_pos) ||
        route.sink != static_cast<csd::Position>(*dst_pos);
    if (stale) {
      network_.release(c.route);
      c.route = csd::kNoRoute;
    }
  }
  // Pass 2: route every resident, unrouted chain.
  std::size_t failures = 0;
  for (auto& c : chains_) {
    if (c.routed()) continue;
    const auto src_pos = space_.find(c.source);
    const auto dst_pos = space_.find(c.sink);
    if (!src_pos || !dst_pos) continue;  // dormant
    if (*src_pos == *dst_pos) continue;  // cannot happen; defensive
    const auto route =
        network_.establish(static_cast<csd::Position>(*src_pos),
                           static_cast<csd::Position>(*dst_pos));
    if (route) {
      c.route = *route;
    } else {
      ++failures;
    }
  }
  // Snapshot versions *after* the pass: releases/establishes above are
  // our own mutations, not new external state.
  chains_dirty_ = false;
  seen_space_version_ = space_.version();
  seen_net_version_ = network_.version();
  last_failures_ = failures;
  return failures;
}

std::size_t ChainSet::routed() const {
  return static_cast<std::size_t>(std::count_if(
      chains_.begin(), chains_.end(),
      [](const Chain& c) { return c.routed(); }));
}

std::size_t ChainSet::unrouted_resident() const {
  std::size_t n = 0;
  for (const auto& c : chains_) {
    if (!c.routed() && space_.contains(c.source) && space_.contains(c.sink)) {
      ++n;
    }
  }
  return n;
}

ConfigurationPipeline::ConfigurationPipeline(ObjectSpace& space, Wsrf& wsrf,
                                             ObjectLibrary& library,
                                             ChainSet& chains,
                                             ReplacementScheduler& scheduler,
                                             PipelineConfig config,
                                             Trace* trace)
    : space_(space),
      wsrf_(wsrf),
      library_(library),
      chains_(chains),
      scheduler_(scheduler),
      config_(config),
      trace_(trace) {
  VLSIP_REQUIRE(config.cfb_entries >= 1, "need at least one CFB entry");
}

std::uint64_t ConfigurationPipeline::ensure_resident(
    const arch::Program& program, arch::ObjectId id, std::uint64_t now,
    ConfigStats& stats) {
  ++stats.object_requests;
  if (const auto pos = space_.find(id)) {
    // Hit. Central WSRF tag check; a retired tag forces an array search.
    ++stats.hits;
    if (wsrf_.lookup(id) == nullptr) {
      ++stats.array_searches;
      now += static_cast<std::uint64_t>(config_.array_search_penalty);
      wsrf_.insert(id);
    }
    // LRU re-sort: the hit object returns to the top of the stack.
    if (config_.promote_on_hit && space_.promote(id) != 0) {
      ++stats.promotes;
      now += 1;  // parallel stack shift of the span above it
    }
    if (trace_) {
      trace_->record(now, "pipeline",
                     "hit object " + std::to_string(id) + " (was depth " +
                         std::to_string(*pos) + ")");
    }
    return now;
  }

  // Miss: load from the library into a CFB entry, then stack-shift the
  // loaded object into the object space (§2.3).
  ++stats.misses;
  VLSIP_REQUIRE(library_.contains(id) ||
                    id < program.library.size(),
                "requested object exists nowhere");
  const std::uint64_t load_done =
      now + static_cast<std::uint64_t>(library_.load_latency());
  stats.miss_wait_cycles += library_.load_latency();

  std::uint64_t t = load_done;
  if (space_.full()) {
    const arch::ObjectId victim = space_.evict_bottom();
    ++stats.evictions;
    // Write-back policy (§2.5): the replaced object's logical state is
    // stored back to the library, through the scheduling table — the
    // pipeline proceeds as soon as a write-back port accepts the victim
    // and stalls only when every port is draining.
    const bool dirty = !dirty_probe_ || dirty_probe_(victim);
    if (dirty && library_.contains(victim)) {
      const std::uint64_t proceed =
          scheduler_.schedule_write_back(victim, t);
      stats.write_back_stalls += proceed - t;
      t = proceed;
      library_.write_back(library_.fetch(victim));
      ++stats.write_backs;
    }
    wsrf_.erase(victim);
    // The victim's chains go *dormant* (their routes are released at the
    // next refresh); if the object later re-enters via a fault, the
    // network re-resolves them — §2.6.2's re-request behaviour.
    t += 1;
    if (trace_) {
      trace_->record(t, "pipeline",
                     "evicted object " + std::to_string(victim));
    }
  }
  space_.insert_top(id);
  ++stats.stack_inserts;
  t += 1;  // the stack shift entering the loaded object
  wsrf_.insert(id);
  if (trace_) {
    trace_->record(t, "pipeline", "entered object " + std::to_string(id));
  }
  return t;
}

ConfigStats ConfigurationPipeline::configure(const arch::Program& program) {
  ConfigStats stats;
  // Reservation-table pipeline: per-stage "free at" cycles. PU/RF/RE are
  // single-cycle pass-through stages; REQ and ACQ have variable
  // occupancy (miss handling, chaining handshake).
  std::uint64_t pu_free = 0;
  std::uint64_t rf_free = 0;
  std::uint64_t re_free = 0;
  std::uint64_t req_free = 0;
  std::uint64_t acq_free = 0;

  for (const auto& element : program.stream.elements()) {
    ++stats.elements;
    const std::uint64_t pu = pu_free;
    pu_free = pu + 1;
    const std::uint64_t rf = std::max(pu + 1, rf_free);
    rf_free = rf + 1;
    const std::uint64_t re = std::max(rf + 1, re_free);
    re_free = re + 1;

    // Request stage: sink first, then sources (§2.3: necessary resources
    // are searched; misses are inserted at this stage).
    std::uint64_t req = std::max(re + 1, req_free);
    bool placement_changed_before = !space_.contains(element.sink);
    // CFB concurrency: group the element's misses; up to cfb_entries
    // loads overlap, so charge ceil(misses / cfb) load rounds. We model
    // it by letting ensure_resident serialise and then discounting the
    // overlapped portion below.
    const std::uint64_t req_begin = req;
    int miss_count = 0;
    for (const auto id : element.referenced()) {
      const bool was_miss = !space_.contains(id);
      if (was_miss) {
        ++miss_count;
        placement_changed_before = true;
      }
      req = ensure_resident(program, id, req, stats);
    }
    // Overlap discount: (misses beyond the first, within one CFB round)
    // hide their load latency behind the first load.
    if (miss_count > 1) {
      const int overlapped =
          std::min(miss_count, config_.cfb_entries) - 1;
      const auto discount = static_cast<std::uint64_t>(overlapped) *
                            static_cast<std::uint64_t>(
                                library_.load_latency());
      const std::uint64_t span = req - req_begin;
      req -= std::min(discount, span);
    }
    (void)placement_changed_before;
    req_free = req;

    // Acquirement stage: add this element's chains, re-resolve routes,
    // charge the parallel CSD handshakes (channels operate
    // independently, so the slowest chain dominates).
    const std::uint64_t acq_start = std::max(req + 1, acq_free);
    std::uint64_t acq = acq_start;
    std::uint64_t worst_handshake = 0;
    for (int s = 0; s < arch::kMaxSources; ++s) {
      const arch::ObjectId src = element.sources[s];
      if (src == arch::kNoObject) continue;
      chains_.add(src, element.sink, s);
      const auto sp = space_.find(src);
      const auto dp = space_.find(element.sink);
      if (sp && dp && *sp != *dp) {
        worst_handshake = std::max(
            worst_handshake, csd::DynamicCsdNetwork::handshake_latency(
                                 static_cast<csd::Position>(*sp),
                                 static_cast<csd::Position>(*dp)));
      }
    }
    stats.route_failures += chains_.refresh();
    // Pin the chained objects' WSRF entries. Inserts can fail when every
    // register holds an active entry (a working set larger than the
    // WSRF); those objects fall back to array search on re-request —
    // already charged via array_search_penalty.
    if (wsrf_.insert(element.sink)) {
      wsrf_.set_active(element.sink, true);
    }
    for (int s = 0; s < arch::kMaxSources; ++s) {
      if (element.sources[s] == arch::kNoObject) continue;
      if (wsrf_.insert(element.sources[s])) {
        wsrf_.set_active(element.sources[s], true);
      }
    }
    acq += worst_handshake;
    stats.acquire_handshake_cycles += worst_handshake;
    acq_free = acq + 1;
    stats.cycles = acq + 1;

    if (config_.record_timeline) {
      stats.timeline.push_back(
          ElementTiming{pu, rf, re, req_begin, req, acq_start, acq + 1});
    }
  }
  return stats;
}

std::uint64_t ConfigurationPipeline::request_object(
    const arch::Program& program, arch::ObjectId id, ConfigStats& stats) {
  const std::uint64_t done = ensure_resident(program, id, 0, stats);
  stats.route_failures += chains_.refresh();
  return done;
}

void ChainSet::save(snapshot::Writer& w) const {
  w.section("ap.chain_set");
  w.u64(chains_.size());
  for (const auto& c : chains_) {
    w.u32(c.source);
    w.u32(c.sink);
    w.i32(c.operand);
    w.u32(c.route);
  }
  w.u64(rebuilds_);
  w.b(chains_dirty_);
  w.u64(seen_space_version_);
  w.u64(seen_net_version_);
  w.u64(last_failures_);
}

void ChainSet::restore(snapshot::Reader& r) {
  r.section("ap.chain_set");
  chains_.clear();
  const std::uint64_t n = r.count(16);
  chains_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Chain c;
    c.source = r.u32();
    c.sink = r.u32();
    c.operand = r.i32();
    c.route = r.u32();
    chains_.push_back(c);
  }
  rebuilds_ = r.u64();
  chains_dirty_ = r.b();
  seen_space_version_ = r.u64();
  seen_net_version_ = r.u64();
  last_failures_ = static_cast<std::size_t>(r.u64());
}

void save_config_stats(snapshot::Writer& w, const ConfigStats& stats) {
  w.section("ap.config_stats");
  w.u64(stats.cycles);
  w.u64(stats.elements);
  w.u64(stats.object_requests);
  w.u64(stats.hits);
  w.u64(stats.misses);
  w.u64(stats.array_searches);
  w.u64(stats.stack_inserts);
  w.u64(stats.promotes);
  w.u64(stats.evictions);
  w.u64(stats.write_backs);
  w.u64(stats.acquire_handshake_cycles);
  w.u64(stats.miss_wait_cycles);
  w.u64(stats.write_back_stalls);
  w.u64(stats.route_failures);
  w.u64(stats.stream_fetch_cycles);
  w.u64(stats.timeline.size());
  for (const auto& t : stats.timeline) {
    w.u64(t.pointer_update);
    w.u64(t.request_fetch);
    w.u64(t.request_evaluation);
    w.u64(t.request_start);
    w.u64(t.request_done);
    w.u64(t.acquire_start);
    w.u64(t.acquire_done);
  }
}

ConfigStats restore_config_stats(snapshot::Reader& r) {
  r.section("ap.config_stats");
  ConfigStats stats;
  stats.cycles = r.u64();
  stats.elements = r.u64();
  stats.object_requests = r.u64();
  stats.hits = r.u64();
  stats.misses = r.u64();
  stats.array_searches = r.u64();
  stats.stack_inserts = r.u64();
  stats.promotes = r.u64();
  stats.evictions = r.u64();
  stats.write_backs = r.u64();
  stats.acquire_handshake_cycles = r.u64();
  stats.miss_wait_cycles = r.u64();
  stats.write_back_stalls = r.u64();
  stats.route_failures = r.u64();
  stats.stream_fetch_cycles = r.u64();
  const std::uint64_t n = r.count(56);
  stats.timeline.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ElementTiming t;
    t.pointer_update = r.u64();
    t.request_fetch = r.u64();
    t.request_evaluation = r.u64();
    t.request_start = r.u64();
    t.request_done = r.u64();
    t.acquire_start = r.u64();
    t.acquire_done = r.u64();
    stats.timeline.push_back(t);
  }
  return stats;
}

}  // namespace vlsip::ap
