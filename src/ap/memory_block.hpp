// Memory blocks (paper §2, Table 2): 64 KB SRAM objects that sit beside
// the object stack. They hold the logical-object *library* (from which
// cache-missed objects are loaded, §2.3), spilled objects written back by
// the virtual-hardware replacement (§2.5), and application data accessed
// by load/store objects.
//
// Memory objects are "treated as out of the stack" (§2.6.2): they have
// fixed positions on the linear array past the stack region, and accesses
// to them pay the worst-case global-wire delay.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "arch/object.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

struct MemoryBlockConfig {
  /// Words of storage (64 KB of 64-bit words).
  std::size_t words = 64 * 1024 / 8;
  /// Access latency in cycles (SRAM array + port).
  int access_latency = 4;
};

/// One 64 KB SRAM memory block with word addressing.
class MemoryBlock {
 public:
  explicit MemoryBlock(MemoryBlockConfig config = {});

  std::size_t size() const { return data_.size(); }
  int access_latency() const { return config_.access_latency; }

  arch::Word read(std::size_t address) const;
  void write(std::size_t address, arch::Word value);

  /// Bulk initialisation helper for examples.
  void fill(std::size_t base, const std::vector<arch::Word>& values);

  // --- fault injection ---------------------------------------------------

  /// Marks the whole block defective: reads return the poison word and
  /// writes are dropped (a dead SRAM array keeps its ports but not its
  /// cells). Irreversible, like a real silicon defect.
  void poison();
  bool poisoned() const { return poisoned_; }

  /// The word a poisoned block returns on every read.
  static arch::Word poison_word();

  /// Checkpoint codec: data is sparse-encoded (only nonzero words), so
  /// a mostly-empty 64 KB block costs a few bytes in the snapshot.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  MemoryBlockConfig config_;
  std::vector<arch::Word> data_;
  bool poisoned_ = false;
};

/// The AP's full memory: `blocks` 64 KB memory objects side by side on
/// the linear array (16 per minimum AP, §4.1). Word addresses interleave
/// across blocks at word granularity, so streaming accesses hit the
/// banks round-robin and sustain one access per bank per cycle. Each
/// bank has one port: a second access while busy waits (bank conflict),
/// which the executor charges.
class MemorySystem {
 public:
  MemorySystem(int blocks, MemoryBlockConfig config = {});

  int block_count() const { return static_cast<int>(blocks_.size()); }
  /// Total words across all banks.
  std::size_t size() const;
  int access_latency() const { return config_.access_latency; }

  arch::Word read(std::size_t address) const;
  void write(std::size_t address, arch::Word value);
  void fill(std::size_t base, const std::vector<arch::Word>& values);

  /// Bank that serves `address` (word interleaving).
  int bank_of(std::size_t address) const;

  /// Poisons one bank (see MemoryBlock::poison).
  void poison_block(int bank);
  bool block_poisoned(int bank) const;
  int poisoned_blocks() const;

  /// Models the single port: returns the cycle the access *completes*
  /// when issued at `now` (>= now + access_latency; later if the bank
  /// is busy) and occupies the bank until then.
  std::uint64_t access_at(std::size_t address, std::uint64_t now);

  std::uint64_t bank_conflicts() const { return conflicts_; }

  const MemoryBlock& block(int i) const { return blocks_.at(i); }

  /// Checkpoint codec; the restored system must have the same block
  /// count and geometry (enforced by section tags + block counts).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  MemoryBlockConfig config_;
  std::vector<MemoryBlock> blocks_;
  std::vector<std::uint64_t> bank_busy_until_;
  std::uint64_t conflicts_ = 0;
};

/// The logical-object library, stored across the AP's memory blocks.
/// Loading an object costs the memory access latency plus a transfer
/// cost; the configuration pipeline overlaps up to CFB-many loads.
class ObjectLibrary {
 public:
  /// `load_latency`: cycles to fetch one logical object (SRAM access +
  /// configuration-word transfer).
  explicit ObjectLibrary(int load_latency = 8);

  int load_latency() const { return load_latency_; }

  void store(const arch::LogicalObject& object);
  bool contains(arch::ObjectId id) const;
  const arch::LogicalObject& fetch(arch::ObjectId id) const;
  std::size_t size() const { return objects_.size(); }

  /// Write-back of a replaced object (§2.5). The library keeps the most
  /// recent state; write-backs of unknown objects are precondition
  /// errors.
  void write_back(const arch::LogicalObject& object);

  std::size_t write_backs() const { return write_backs_; }

  /// Checkpoint codec: objects serialize via arch::save_object in map
  /// (ascending id) order — deterministic bytes for identical state.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  int load_latency_;
  std::map<arch::ObjectId, arch::LogicalObject> objects_;
  std::size_t write_backs_ = 0;
};

}  // namespace vlsip::ap
