// The object space: a stack-structured array of physical objects (paper
// §2.4).
//
// Placement is deterministic: a newly entered logical object always goes
// to the *top* of the stack, pushing every resident object one position
// down ("a stack shift sorts the objects in the array"). Because the
// physical order is exactly the recency order, LRU replacement is free:
// the bottom of the stack is always the replacement candidate, and a
// reference hits iff its stack distance is <= capacity.
//
// Physical position on the linear array == stack depth (top = 0). A hit
// promotes the object back to the top, re-sorting the span above it — the
// dynamic CSD network re-resolves chains after such shifts (§2.6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/object.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

class ObjectSpace {
 public:
  /// `capacity` is C, the array size of this (possibly scaled) AP.
  explicit ObjectSpace(int capacity);

  int capacity() const { return capacity_; }
  int size() const { return static_cast<int>(stack_.size()); }
  bool full() const { return size() == capacity_; }
  bool empty() const { return stack_.empty(); }

  /// 0-based stack distance of `id` (0 = top), or nullopt on miss.
  std::optional<int> find(arch::ObjectId id) const;

  bool contains(arch::ObjectId id) const { return find(id).has_value(); }

  /// Physical array position of a resident object (== stack distance).
  int position_of(arch::ObjectId id) const;

  /// Object at a given position; position must be < size().
  arch::ObjectId at(int position) const;

  /// LRU replacement candidate (bottom of stack). Requires !empty().
  arch::ObjectId bottom() const;

  /// Enters `id` at the top, shifting all residents down one. Requires
  /// !full() and id not already resident.
  void insert_top(arch::ObjectId id);

  /// Removes and returns the bottom (LRU) object. Requires !empty().
  arch::ObjectId evict_bottom();

  /// Removes `id` wherever it is (defect handling / explicit release).
  void remove(arch::ObjectId id);

  /// Moves a resident object to the top (the LRU re-sort a hit causes).
  /// Returns its previous stack distance.
  int promote(arch::ObjectId id);

  /// Removes one slot — a physical object went defective (§1's
  /// defect-tolerance story at object granularity). Capacity shrinks by
  /// one; if the stack was full, the bottom (LRU) object is evicted and
  /// returned. Requires capacity > 1.
  std::optional<arch::ObjectId> reduce_capacity();

  /// Stack order, top first.
  const std::vector<arch::ObjectId>& stack() const { return stack_; }

  /// Placement generation: bumped by every mutation that changes which
  /// object sits at which position (insert, evict, remove, promote that
  /// actually moves). Consumers (ChainSet::refresh) skip re-resolution
  /// while the version is unchanged.
  std::uint64_t version() const { return version_; }

  std::string render() const;

  /// Checkpoint codec. restore() overwrites capacity (it shrinks at
  /// runtime via reduce_capacity) and rebuilds the id index.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  void reindex(std::size_t from);

  int capacity_;
  std::vector<arch::ObjectId> stack_;  // [0] = top
  std::unordered_map<arch::ObjectId, int> index_;
  std::uint64_t version_ = 0;
};

}  // namespace vlsip::ap
