// The adaptive processor's configuration pipeline (paper §2.2–§2.3,
// fig. 1) and the chain bookkeeping it maintains.
//
// Five stages walk the global configuration data stream:
//   1. Pointer Update      — advances the stream pointer (independent);
//   2. Request Fetch       — fetches the element (like instruction fetch);
//   3. Request Evaluation  — evaluates the request (memory requests too);
//   4. Request             — requests the named objects; the cache-miss
//                            handling is inserted at this stage;
//   5. Acquirement         — acquires resources: the WSRF issues the
//                            acquirement signal and the dynamic CSD
//                            network performs the chaining handshake.
//
// A cache miss loads the logical object from the library into one of the
// configuration-buffer objects (CFB, 3 entries — Table 3), then forces a
// stack shift "from the top of the stack to the bottom" to enter it into
// the object space, and the element is requested again (§2.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "arch/config_stream.hpp"
#include "arch/datapath.hpp"
#include "ap/memory_block.hpp"
#include "ap/object_space.hpp"
#include "ap/replacement.hpp"
#include "ap/wsrf.hpp"
#include "common/trace.hpp"
#include "csd/dynamic_csd.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

/// One configured dependency: source object feeds operand `operand` of
/// the sink object, over CSD route `route` when both ends are resident.
struct Chain {
  arch::ObjectId source = arch::kNoObject;
  arch::ObjectId sink = arch::kNoObject;
  int operand = 0;
  csd::RouteId route = csd::kNoRoute;

  bool routed() const { return route != csd::kNoRoute; }
};

/// Owns the set of configured chains and keeps the dynamic CSD network's
/// claims consistent with current object placement. Stack shifts reorder
/// positions, so after any placement change the chains are re-resolved —
/// the re-request behaviour §2.6.2 attributes to the dynamic CSD network.
class ChainSet {
 public:
  ChainSet(csd::DynamicCsdNetwork& network, const ObjectSpace& space);

  void add(arch::ObjectId source, arch::ObjectId sink, int operand);

  /// Drops chains touching `id` (released or defective object).
  void remove_for(arch::ObjectId id);

  void clear();

  /// Re-resolves chains against current placement: chains whose endpoint
  /// positions moved are released and re-established; dormant chains (an
  /// endpoint swapped out) hold no route. Returns the number of resident
  /// chains that could not be routed (channel exhaustion — the
  /// routability trade-off of §2.6.2).
  ///
  /// Incremental: when neither the object placement, the network claim
  /// state, nor the chain list changed since the previous refresh, the
  /// pass is skipped entirely (re-running it would be a deterministic
  /// no-op) and the cached failure count is returned. Version counters
  /// on ObjectSpace and DynamicCsdNetwork detect the changes.
  std::size_t refresh();

  std::size_t size() const { return chains_.size(); }
  std::size_t routed() const;
  std::size_t unrouted_resident() const;
  const std::vector<Chain>& chains() const { return chains_; }
  /// Refresh passes that actually ran (skipped no-op passes excluded).
  std::size_t rebuilds() const { return rebuilds_; }

  /// Checkpoint codec. The network/space references are not serialized;
  /// restore() assumes they were restored first and rebinds nothing.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  csd::DynamicCsdNetwork& network_;
  const ObjectSpace& space_;
  std::vector<Chain> chains_;
  std::size_t rebuilds_ = 0;
  // Memoization of the last completed refresh.
  bool chains_dirty_ = true;
  std::uint64_t seen_space_version_ = 0;
  std::uint64_t seen_net_version_ = 0;
  std::size_t last_failures_ = 0;
};

struct PipelineConfig {
  /// Concurrent cache-miss loads (configuration buffer objects).
  int cfb_entries = 3;
  /// Extra cycles when the object is resident but its WSRF tag was
  /// retired, forcing a search in the array instead of the central WSRF.
  int array_search_penalty = 2;
  /// Record the per-element stage timeline into ConfigStats::timeline
  /// (fig. 1 visualisation; off by default to keep configure() lean).
  bool record_timeline = false;
  /// LRU re-sort on hit (§2.4: "a stack shift sorts the objects in the
  /// array" so placement order == recency order). false = FIFO stack
  /// (insertion order, no promotion) — the ablation baseline showing
  /// why the paper's stack discipline matters.
  bool promote_on_hit = true;
};

/// When each element occupied each pipeline stage (absolute cycles).
struct ElementTiming {
  std::uint64_t pointer_update = 0;
  std::uint64_t request_fetch = 0;
  std::uint64_t request_evaluation = 0;
  std::uint64_t request_start = 0;
  std::uint64_t request_done = 0;
  std::uint64_t acquire_start = 0;
  std::uint64_t acquire_done = 0;
};

struct ConfigStats {
  std::uint64_t cycles = 0;
  std::uint64_t elements = 0;
  std::uint64_t object_requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t array_searches = 0;
  std::uint64_t stack_inserts = 0;
  std::uint64_t promotes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t write_backs = 0;
  std::uint64_t acquire_handshake_cycles = 0;
  std::uint64_t miss_wait_cycles = 0;
  std::uint64_t write_back_stalls = 0;  // scheduling-table port waits
  std::uint64_t route_failures = 0;
  /// Extra cycles the request-fetch stage spent reading the stream out
  /// of the memory blocks (configure_from_memory only).
  std::uint64_t stream_fetch_cycles = 0;
  /// Per-element stage occupancy; filled only when
  /// PipelineConfig::record_timeline is set.
  std::vector<ElementTiming> timeline;

  double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// Checkpoint codecs for ConfigStats (free functions — the struct stays
/// an aggregate).
void save_config_stats(snapshot::Writer& w, const ConfigStats& stats);
ConfigStats restore_config_stats(snapshot::Reader& r);

/// Cycle-level model of the five-stage configuration pipeline.
class ConfigurationPipeline {
 public:
  ConfigurationPipeline(ObjectSpace& space, Wsrf& wsrf,
                        ObjectLibrary& library, ChainSet& chains,
                        ReplacementScheduler& scheduler,
                        PipelineConfig config = {}, Trace* trace = nullptr);

  /// Runs the whole stream to completion; logical objects are loaded
  /// from the library on miss (the AP stores the program's objects into
  /// the library beforehand). Returns per-run statistics.
  ConfigStats configure(const arch::Program& program);

  /// Requests a single object outside stream processing (used by the
  /// executor's virtual-hardware faults). Returns the cycles consumed.
  std::uint64_t request_object(const arch::Program& program,
                               arch::ObjectId id, ConfigStats& stats);

  /// Write-back predicate (§2.5: "replaceable object(s) is stored if
  /// necessary"): returns true when the victim's state diverged from
  /// the library image. Unset = conservatively always dirty.
  using DirtyProbe = std::function<bool(arch::ObjectId)>;
  void set_dirty_probe(DirtyProbe probe) { dirty_probe_ = std::move(probe); }

 private:
  struct MissLoad {
    arch::ObjectId id;
    std::uint64_t ready_at;
  };

  /// Ensures `id` is resident, charging loads/evictions/shifts onto
  /// `stats` starting at absolute cycle `now`; returns the cycle at
  /// which the object is usable.
  std::uint64_t ensure_resident(const arch::Program& program,
                                arch::ObjectId id, std::uint64_t now,
                                ConfigStats& stats);

  ObjectSpace& space_;
  Wsrf& wsrf_;
  ObjectLibrary& library_;
  ChainSet& chains_;
  ReplacementScheduler& scheduler_;
  PipelineConfig config_;
  Trace* trace_;
  DirtyProbe dirty_probe_;
};

}  // namespace vlsip::ap
