// Working-set register file (paper §2.2 stage 5, §2.6.1, Table 3).
//
// The WSRF maintains the acquired elements of the working set [Denning].
// Cache-hit detection is "centrally processed on the WSRF instead of
// searching in the array" (§2.6.1); the acquirement pipeline stage reads
// the acquirement signal from here, and the signal tells the object which
// communication port (channel) to use for its chaining.
//
// Capacity is 40 entries — the "64b x40 Reg. in WSRF" row of Table 3.
// When the working set outgrows the WSRF, the oldest unpinned entry is
// retired (its object stays resident; only the central tag is lost, so a
// later request for it falls back to an array search, costing extra
// cycles — modelled by the pipeline).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "arch/object.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

struct WsrfEntry {
  arch::ObjectId id = arch::kNoObject;
  /// Granted CSD channel of the object's most recent chaining, if any.
  std::optional<std::uint32_t> channel;
  /// Active objects are part of a configured datapath and may not be
  /// retired to make room.
  bool active = false;
};

class Wsrf {
 public:
  explicit Wsrf(int capacity = 40);

  int capacity() const { return capacity_; }
  int size() const { return static_cast<int>(entries_.size()); }

  /// Central tag search. Returns the entry if present (O(1) — searching
  /// WSRFs "can be performed in parallel").
  const WsrfEntry* lookup(arch::ObjectId id) const;

  /// Inserts or refreshes an entry; retires the oldest inactive entry if
  /// full. Returns false if the WSRF is full of active entries and the
  /// insert was dropped (the pipeline then relies on array search).
  bool insert(arch::ObjectId id);

  /// Records the acquirement signal (granted channel) for an entry.
  void set_channel(arch::ObjectId id, std::uint32_t channel);

  void set_active(arch::ObjectId id, bool active);

  /// Removes the entry when its object is released or evicted.
  void erase(arch::ObjectId id);

  void clear();

  std::size_t retirements() const { return retirements_; }

  /// Checkpoint codec: entries in insertion order (oldest first), so the
  /// restored list reproduces retirement order exactly.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  int capacity_;
  /// Insertion-ordered entries (front = oldest) with an id index.
  std::list<WsrfEntry> entries_;
  std::unordered_map<arch::ObjectId, std::list<WsrfEntry>::iterator> index_;
  std::size_t retirements_ = 0;
};

}  // namespace vlsip::ap
