// Token-driven dataflow execution of a configured datapath.
//
// After acquirement the objects are "free from control" (§2.2): each
// object fires when its operand tokens are present and its downstream
// queues have space, busy-waits its fabric latency, and broadcasts its
// result along the configured chains. There is no program counter — the
// configuration stream's dependencies fully determine execution order.
//
// Virtual hardware (§2.5): in scalar mode an object may have been swapped
// out of the object space. A ready-to-fire non-resident object raises an
// *object fault*; the processor services it through the configuration
// pipeline (evict LRU, load from library, stack shift) and execution
// resumes — exactly the replacement the paper schedules through its
// scheduling table. Streaming mode forbids faults: a streaming datapath
// must fit within capacity C.
//
// Two cycle engines share one firing semantics:
//  - the *dense* reference loop scans every object every cycle;
//  - the *event-driven* loop (ExecConfig::event_driven, the default)
//    only touches objects in the ActivitySet — woken by token arrival,
//    queue-space release, latency expiry, or fault-service completion —
//    and skips runs of cycles where nothing is scheduled (§3.3
//    inactive/sleep states cost zero work). Both produce bit-identical
//    results, traces, and stats; tests/test_properties.cpp sweeps the
//    equivalence over seeded random programs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "ap/memory_block.hpp"
#include "ap/object_space.hpp"
#include "common/activity_set.hpp"
#include "common/trace.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::ap {

struct ExecConfig {
  /// Per-chain token queue depth (double-buffered channels by default).
  int edge_capacity = 2;
  /// Extra cycles on every memory-object access beyond the SRAM latency
  /// (the out-of-stack global-wire traversal, §2.6.2).
  int memory_wire_penalty = 2;
  /// Cycles without progress after which the run is declared deadlocked.
  std::uint64_t deadlock_window = 10000;
  /// Allow object faults (virtual hardware). Off for streaming.
  bool allow_faults = true;
  /// Concurrent fault services (the configuration-buffer objects, CFB
  /// x3 in Table 3). Bounding this also prevents eviction livelock: a
  /// freshly loaded object gets to fire before a burst of later faults
  /// can push it back to the bottom of the stack.
  int fault_concurrency = 3;
  /// Event-driven cycle engine: only objects with pending work are
  /// touched each cycle and fully idle cycle runs are skipped in O(1).
  /// Off falls back to the dense every-object-every-cycle reference
  /// scan. The two are bit-identical.
  bool event_driven = true;
};

struct ExecStats {
  std::uint64_t cycles = 0;
  std::uint64_t firings = 0;
  std::uint64_t tokens_moved = 0;
  std::uint64_t int_ops = 0;
  std::uint64_t float_ops = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t transport_ops = 0;
  std::uint64_t faults = 0;
  std::uint64_t fault_cycles = 0;
  std::uint64_t release_tokens = 0;
  std::uint64_t idle_cycles = 0;
  /// Event-engine observability (always zero in dense mode; excluded
  /// from the dense/event equivalence checks). Wake-queue deliveries
  /// and O(1) idle-run fast-forwards taken.
  std::uint64_t wakes = 0;
  std::uint64_t quiescence_skips = 0;
  bool deadlocked = false;
  bool completed = false;
  /// On deadlock: one line per blocked object explaining what it waits
  /// for (Holt-style wait-for edges, paper ref [10]) — empty otherwise.
  std::vector<std::string> blocked_report;

  std::uint64_t total_ops() const {
    return int_ops + float_ops + mem_ops + transport_ops;
  }
};

/// Checkpoint codecs for ExecStats (free functions — the struct stays
/// an aggregate).
void save_exec_stats(snapshot::Writer& w, const ExecStats& stats);
ExecStats restore_exec_stats(snapshot::Reader& r);

class Executor {
 public:
  /// Fault handler: makes `id` resident (through the configuration
  /// pipeline) and returns the service latency in cycles.
  using FaultHandler = std::function<std::uint64_t(arch::ObjectId)>;

  /// `space` decides residency; `memory` backs load/store objects.
  Executor(const arch::Program& program, const ObjectSpace& space,
           MemorySystem& memory, ExecConfig config = {},
           Trace* trace = nullptr);

  /// Rebuilds the executor for a new program in place, reusing the node
  /// / edge / ring / activity arenas from the previous datapath — the
  /// per-job reconfigure path allocates nothing once the farm is warm.
  void rebind(const arch::Program& program);

  void set_fault_handler(FaultHandler handler) {
    fault_handler_ = std::move(handler);
  }

  /// Injects one token into a named input port.
  void feed(const std::string& input, arch::Word value);

  /// Runs until every output has collected `expected_per_output` tokens,
  /// the datapath quiesces (expected == 0), or `max_cycles` pass.
  ExecStats run(std::size_t expected_per_output, std::uint64_t max_cycles);

  /// Values collected at a named output, in arrival order.
  const std::vector<arch::Word>& output(const std::string& name) const;

  /// Fires the release tokens through the datapath (§2.2: "An object is
  /// released by receiving and firing release token(s)"), clearing all
  /// in-flight state. Returns the number of release tokens fired (one
  /// per chain, propagated source -> sink).
  std::uint64_t release();

  /// Cycles the release wave needs to sweep the datapath: tokens hop
  /// chain by chain, so the cost is the dependency depth of the chain
  /// DAG (feedback edges are broken by the wave itself). "This
  /// technique reduces the idling time as rapidly as possible" (§5) —
  /// the wave is O(depth), not O(objects).
  std::uint64_t release_wave_depth() const;

  /// Objects whose runtime state diverged from the library image (their
  /// eviction must write back, §2.5). One flag per object id.
  const std::vector<std::uint8_t>& dirty() const { return dirty_; }

  /// Wait-for analysis of the current state: one line per object that
  /// could not fire, naming the blocking resource (missing operand,
  /// full downstream queue, non-residency). Used for the deadlock
  /// report and debugging stuck datapaths.
  std::vector<std::string> diagnose() const;

  /// Checkpoint codec for the *mutable* execution state: token rings,
  /// latched results, latency timers, injection/collection queues and
  /// the event-engine activity/wake structures. Structural state (node
  /// wiring, CSR spans) is NOT serialized — restore() requires an
  /// executor already bound to the identical program (rebind rebuilds
  /// structure deterministically) and overwrites only what runs mutate,
  /// reproducing the machine bit-for-bit including heap layout of the
  /// wake queue.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  /// Token chain between two objects. The queue is a fixed-capacity
  /// ring inside the shared `edge_slots_` arena — no per-token heap
  /// traffic on the hot path.
  struct Edge {
    arch::ObjectId source;
    arch::ObjectId sink;
    std::int32_t operand;
    std::uint32_t head = 0;  // ring read offset within this edge's span
    std::uint32_t len = 0;
  };

  struct Node {
    const arch::LogicalObject* object = nullptr;
    /// Chained operand edge per position, -1 if unchained; `arity`
    /// entries are meaningful.
    std::array<std::int32_t, arch::kMaxSources> in_edges{{-1, -1, -1}};
    std::uint8_t arity = 0;
    bool has_pending = false;   // completed result awaiting push
    bool pending_produces = false;
    bool fault_in_service = false;
    arch::Word pending_value{};
    std::uint32_t out_begin = 0;  // CSR span into out_edges_
    std::uint32_t out_count = 0;
    std::uint64_t busy_until = 0;
    std::uint64_t bind_ready_at = 0;  // fault service completion
    // kIota sequencer state: tokens still to emit and the next value.
    std::uint64_t iota_remaining = 0;
    std::uint64_t iota_next = 0;
    std::int32_t ext_index = -1;   // external injection queue, -1 if none
    std::int32_t sink_slot = -1;   // collection bucket for kSink, -1 if none
  };

  /// External injection queue: consumed front-to-back via a head
  /// cursor, so a run never reallocates while draining.
  struct ExtQueue {
    std::vector<arch::Word> buf;
    std::size_t head = 0;
    bool empty() const { return head >= buf.size(); }
  };

  /// What a scan attempt did — drives event-mode wake-up decisions.
  enum class FireResult : std::uint8_t {
    kFired,           // consumed operands, result latched
    kBlocked,         // missing operand / no space / busy; dormant until woken
    kFaultRaised,     // object fault issued; wake at bind_ready_at
    kFaultPending,    // service in flight; wake already scheduled
    kCfbBusy,         // all CFB entries busy; retry every cycle
    kEvictedRetry,    // service done but object re-evicted; re-fault next cycle
    kFaultForbidden,  // non-resident and faults disallowed; terminal
  };

  ExecStats run_dense(std::size_t expected_per_output,
                      std::uint64_t max_cycles);
  ExecStats run_event(std::size_t expected_per_output,
                      std::uint64_t max_cycles);
  /// One object's slice of a cycle: push then fire, with event-mode
  /// wake bookkeeping when `event` is set.
  void process_node(std::uint32_t id, ExecStats& stats, bool& progress,
                    bool event);
  bool outputs_done(std::size_t expected_per_output) const;

  bool try_push_pending(Node& node, std::uint64_t now, ExecStats& stats);
  FireResult try_fire(arch::ObjectId id, Node& node, std::uint64_t now,
                      ExecStats& stats);
  bool inputs_ready(const Node& node) const;
  bool outputs_have_space(const Node& node) const;
  arch::Word pop_operand(Node& node, int operand);
  bool compute(const Node& node, const arch::Word* args, arch::Word& result,
               bool& produces, ExecStats& stats);

  void push_edge(std::int32_t e, arch::Word w) {
    Edge& edge = edges_[static_cast<std::size_t>(e)];
    const std::uint32_t cap = static_cast<std::uint32_t>(config_.edge_capacity);
    edge_slots_[static_cast<std::size_t>(e) * cap + (edge.head + edge.len) % cap] = w;
    ++edge.len;
  }
  arch::Word pop_edge(std::int32_t e) {
    Edge& edge = edges_[static_cast<std::size_t>(e)];
    const std::uint32_t cap = static_cast<std::uint32_t>(config_.edge_capacity);
    const arch::Word w =
        edge_slots_[static_cast<std::size_t>(e) * cap + edge.head];
    edge.head = (edge.head + 1) % cap;
    --edge.len;
    return w;
  }

  const arch::Program* program_;
  const ObjectSpace& space_;
  MemorySystem& memory_;
  ExecConfig config_;
  Trace* trace_;
  FaultHandler fault_handler_;

  std::vector<Edge> edges_;
  std::vector<arch::Word> edge_slots_;  // edges x edge_capacity ring arena
  std::vector<Node> nodes_;
  std::vector<std::int32_t> out_edges_;  // CSR payload for Node::out_*
  std::vector<ExtQueue> ext_;
  std::vector<std::vector<arch::Word>> collected_;  // by Node::sink_slot
  std::vector<std::uint8_t> dirty_;
  std::uint64_t now_ = 0;
  int faults_in_service_ = 0;

  // Event engine state. `active_` holds ids to scan this cycle; `wake_`
  // re-activates ids at future cycles. The three counters give an O(1)
  // "anything in flight?" test: per-node busy_until only ever grows, so
  // the high-water mark equals the live maximum.
  ActivitySet active_;
  WakeQueue wake_;
  std::size_t pending_count_ = 0;
  std::size_t iota_count_ = 0;
  std::uint64_t max_busy_ = 0;
};

}  // namespace vlsip::ap
