// Token-driven dataflow execution of a configured datapath.
//
// After acquirement the objects are "free from control" (§2.2): each
// object fires when its operand tokens are present and its downstream
// queues have space, busy-waits its fabric latency, and broadcasts its
// result along the configured chains. There is no program counter — the
// configuration stream's dependencies fully determine execution order.
//
// Virtual hardware (§2.5): in scalar mode an object may have been swapped
// out of the object space. A ready-to-fire non-resident object raises an
// *object fault*; the processor services it through the configuration
// pipeline (evict LRU, load from library, stack shift) and execution
// resumes — exactly the replacement the paper schedules through its
// scheduling table. Streaming mode forbids faults: a streaming datapath
// must fit within capacity C.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "ap/memory_block.hpp"
#include "ap/object_space.hpp"
#include "common/trace.hpp"

namespace vlsip::ap {

struct ExecConfig {
  /// Per-chain token queue depth (double-buffered channels by default).
  int edge_capacity = 2;
  /// Extra cycles on every memory-object access beyond the SRAM latency
  /// (the out-of-stack global-wire traversal, §2.6.2).
  int memory_wire_penalty = 2;
  /// Cycles without progress after which the run is declared deadlocked.
  std::uint64_t deadlock_window = 10000;
  /// Allow object faults (virtual hardware). Off for streaming.
  bool allow_faults = true;
  /// Concurrent fault services (the configuration-buffer objects, CFB
  /// x3 in Table 3). Bounding this also prevents eviction livelock: a
  /// freshly loaded object gets to fire before a burst of later faults
  /// can push it back to the bottom of the stack.
  int fault_concurrency = 3;
};

struct ExecStats {
  std::uint64_t cycles = 0;
  std::uint64_t firings = 0;
  std::uint64_t tokens_moved = 0;
  std::uint64_t int_ops = 0;
  std::uint64_t float_ops = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t transport_ops = 0;
  std::uint64_t faults = 0;
  std::uint64_t fault_cycles = 0;
  std::uint64_t release_tokens = 0;
  std::uint64_t idle_cycles = 0;
  bool deadlocked = false;
  bool completed = false;
  /// On deadlock: one line per blocked object explaining what it waits
  /// for (Holt-style wait-for edges, paper ref [10]) — empty otherwise.
  std::vector<std::string> blocked_report;

  std::uint64_t total_ops() const {
    return int_ops + float_ops + mem_ops + transport_ops;
  }
};

class Executor {
 public:
  /// Fault handler: makes `id` resident (through the configuration
  /// pipeline) and returns the service latency in cycles.
  using FaultHandler = std::function<std::uint64_t(arch::ObjectId)>;

  /// `space` decides residency; `memory` backs load/store objects.
  Executor(const arch::Program& program, const ObjectSpace& space,
           MemorySystem& memory, ExecConfig config = {},
           Trace* trace = nullptr);

  void set_fault_handler(FaultHandler handler) {
    fault_handler_ = std::move(handler);
  }

  /// Injects one token into a named input port.
  void feed(const std::string& input, arch::Word value);

  /// Runs until every output has collected `expected_per_output` tokens,
  /// the datapath quiesces (expected == 0), or `max_cycles` pass.
  ExecStats run(std::size_t expected_per_output, std::uint64_t max_cycles);

  /// Values collected at a named output, in arrival order.
  const std::vector<arch::Word>& output(const std::string& name) const;

  /// Fires the release tokens through the datapath (§2.2: "An object is
  /// released by receiving and firing release token(s)"), clearing all
  /// in-flight state. Returns the number of release tokens fired (one
  /// per chain, propagated source -> sink).
  std::uint64_t release();

  /// Cycles the release wave needs to sweep the datapath: tokens hop
  /// chain by chain, so the cost is the dependency depth of the chain
  /// DAG (feedback edges are broken by the wave itself). "This
  /// technique reduces the idling time as rapidly as possible" (§5) —
  /// the wave is O(depth), not O(objects).
  std::uint64_t release_wave_depth() const;

  /// Objects whose runtime state diverged from the library image (their
  /// eviction must write back, §2.5).
  const std::vector<bool>& dirty() const { return dirty_; }

  /// Wait-for analysis of the current state: one line per object that
  /// could not fire, naming the blocking resource (missing operand,
  /// full downstream queue, non-residency). Used for the deadlock
  /// report and debugging stuck datapaths.
  std::vector<std::string> diagnose() const;

 private:
  struct Edge {
    arch::ObjectId source;
    arch::ObjectId sink;
    int operand;
    std::deque<arch::Word> queue;
  };

  struct Node {
    const arch::LogicalObject* object = nullptr;
    std::vector<int> in_edges;   // indexed by operand position
    std::vector<int> out_edges;
    std::uint64_t busy_until = 0;
    std::optional<arch::Word> pending;  // completed result awaiting push
    bool pending_produces = false;
    std::uint64_t bind_ready_at = 0;    // fault service completion
    bool fault_in_service = false;
    // kIota sequencer state: tokens still to emit and the next value.
    std::uint64_t iota_remaining = 0;
    std::uint64_t iota_next = 0;
  };

  bool try_push_pending(Node& node, std::uint64_t now, ExecStats& stats);
  bool try_fire(arch::ObjectId id, Node& node, std::uint64_t now,
                ExecStats& stats);
  bool inputs_ready(const Node& node) const;
  bool outputs_have_space(const Node& node) const;
  arch::Word pop_operand(Node& node, int operand);
  std::optional<arch::Word> compute(const Node& node,
                                    const std::vector<arch::Word>& args,
                                    bool& produces, ExecStats& stats);

  const arch::Program& program_;
  const ObjectSpace& space_;
  MemorySystem& memory_;
  ExecConfig config_;
  Trace* trace_;
  FaultHandler fault_handler_;

  std::vector<Edge> edges_;
  std::vector<Node> nodes_;
  /// External injection queues for input objects.
  std::map<arch::ObjectId, std::deque<arch::Word>> external_;
  /// Collected output tokens per sink object.
  std::map<arch::ObjectId, std::vector<arch::Word>> collected_;
  std::vector<bool> dirty_;
  std::uint64_t now_ = 0;
  int faults_in_service_ = 0;
};

}  // namespace vlsip::ap
