#include "ap/wsrf.hpp"

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

Wsrf::Wsrf(int capacity) : capacity_(capacity) {
  VLSIP_REQUIRE(capacity >= 1, "WSRF needs at least one register");
}

const WsrfEntry* Wsrf::lookup(arch::ObjectId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

bool Wsrf::insert(arch::ObjectId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    // Refresh: move to the back (youngest).
    entries_.splice(entries_.end(), entries_, it->second);
    return true;
  }
  if (size() == capacity_) {
    // Retire the oldest inactive entry.
    auto victim = entries_.begin();
    while (victim != entries_.end() && victim->active) ++victim;
    if (victim == entries_.end()) return false;  // all pinned
    index_.erase(victim->id);
    entries_.erase(victim);
    ++retirements_;
  }
  entries_.push_back(WsrfEntry{id, std::nullopt, false});
  index_[id] = std::prev(entries_.end());
  return true;
}

void Wsrf::set_channel(arch::ObjectId id, std::uint32_t channel) {
  auto it = index_.find(id);
  VLSIP_REQUIRE(it != index_.end(), "no WSRF entry for object");
  it->second->channel = channel;
}

void Wsrf::set_active(arch::ObjectId id, bool active) {
  auto it = index_.find(id);
  VLSIP_REQUIRE(it != index_.end(), "no WSRF entry for object");
  it->second->active = active;
}

void Wsrf::erase(arch::ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  entries_.erase(it->second);
  index_.erase(it);
}

void Wsrf::clear() {
  entries_.clear();
  index_.clear();
}

void Wsrf::save(snapshot::Writer& w) const {
  w.section("ap.wsrf");
  w.i32(capacity_);
  w.u64(entries_.size());
  for (const auto& e : entries_) {
    w.u32(e.id);
    w.b(e.channel.has_value());
    w.u32(e.channel.value_or(0));
    w.b(e.active);
  }
  w.u64(retirements_);
}

void Wsrf::restore(snapshot::Reader& r) {
  r.section("ap.wsrf");
  capacity_ = r.i32();
  clear();
  const std::uint64_t n = r.count(10);
  for (std::uint64_t i = 0; i < n; ++i) {
    WsrfEntry e;
    e.id = r.u32();
    const bool has_channel = r.b();
    const std::uint32_t channel = r.u32();
    if (has_channel) e.channel = channel;
    e.active = r.b();
    entries_.push_back(e);
    index_[e.id] = std::prev(entries_.end());
  }
  retirements_ = r.u64();
}

}  // namespace vlsip::ap
