#include "ap/adaptive_processor.hpp"

#include <algorithm>
#include <sstream>

#include "arch/serialize.hpp"
#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

namespace {

void accumulate(ConfigStats& into, const ConfigStats& from) {
  into.cycles += from.cycles;
  into.elements += from.elements;
  into.object_requests += from.object_requests;
  into.hits += from.hits;
  into.misses += from.misses;
  into.array_searches += from.array_searches;
  into.stack_inserts += from.stack_inserts;
  into.promotes += from.promotes;
  into.evictions += from.evictions;
  into.write_backs += from.write_backs;
  into.acquire_handshake_cycles += from.acquire_handshake_cycles;
  into.miss_wait_cycles += from.miss_wait_cycles;
  into.write_back_stalls += from.write_back_stalls;
  into.route_failures += from.route_failures;
  into.stream_fetch_cycles += from.stream_fetch_cycles;
}

}  // namespace

csd::CsdConfig AdaptiveProcessor::make_csd_config(const ApConfig& config) {
  csd::CsdConfig csd;
  // Positions: the stack region plus the out-of-stack memory objects
  // (§2.6.2: the network must reach memory objects too).
  csd.positions = static_cast<csd::Position>(config.capacity +
                                             config.memory_blocks);
  csd.channels =
      config.csd_channels > 0
          ? static_cast<csd::ChannelId>(config.csd_channels)
          : static_cast<csd::ChannelId>(config.capacity);
  return csd;
}

AdaptiveProcessor::AdaptiveProcessor(ApConfig config)
    : config_(config),
      trace_(config.enable_trace),
      space_(config.capacity),
      wsrf_(config.wsrf_capacity),
      library_(config.library_load_latency),
      network_(make_csd_config(config), config.enable_trace ? &trace_ : nullptr),
      chains_(network_, space_),
      scheduler_(config.replacement),
      pipeline_(space_, wsrf_, library_, chains_, scheduler_,
                config.pipeline, config.enable_trace ? &trace_ : nullptr),
      memory_(config.memory_blocks, config.memory) {
  VLSIP_REQUIRE(config.capacity >= 2, "an AP needs at least two objects");
  VLSIP_REQUIRE(config.memory_blocks >= 1, "an AP needs a memory block");
}

ConfigStats AdaptiveProcessor::configure(const arch::Program& program) {
  VLSIP_REQUIRE(!program.stream.empty(), "program has an empty stream");
  if (program_) release_datapath();

  // Store the program's logical objects into the library (§2.3: logical
  // objects are loaded "from the library in the memory blocks").
  for (const auto& obj : program.library) library_.store(obj);

  program_ = program;
  const ConfigStats stats = pipeline_.configure(*program_);
  accumulate(stats_.config, stats);
  ++stats_.datapaths_configured;

  if (spare_) {
    // Warm path: recycle the previous datapath's executor arenas.
    executor_ = std::move(spare_);
    executor_->rebind(*program_);
  } else {
    executor_ = std::make_unique<Executor>(
        *program_, space_, memory_, config_.exec,
        config_.enable_trace ? &trace_ : nullptr);
  }
  install_execution_hooks();
  return stats;
}

void AdaptiveProcessor::install_execution_hooks() {
  // §2.5: only store the replaceable object if necessary — clean
  // objects (state identical to the library image) skip the write-back.
  pipeline_.set_dirty_probe([this](arch::ObjectId id) {
    if (!executor_) return true;  // no runtime state tracking: be safe
    const auto& dirty = executor_->dirty();
    return id < dirty.size() ? static_cast<bool>(dirty[id]) : true;
  });
  executor_->set_fault_handler([this](arch::ObjectId id) {
    ConfigStats fault_stats;
    const std::uint64_t latency =
        pipeline_.request_object(*program_, id, fault_stats);
    accumulate(stats_.faults, fault_stats);
    return latency;
  });
}

bool AdaptiveProcessor::fits_streaming(const arch::Program& program) const {
  return static_cast<int>(program.object_count()) <= config_.capacity;
}

std::size_t AdaptiveProcessor::store_stream(std::size_t base_address,
                                            const arch::ConfigStream& stream) {
  const auto words = arch::encode_stream(stream);
  for (std::size_t i = 0; i < words.size(); ++i) {
    memory_.write(base_address + i, arch::make_word_u(words[i]));
  }
  return words.size();
}

ConfigStats AdaptiveProcessor::configure_from_memory(
    const arch::Program& library_program, std::size_t base_address,
    std::size_t n_elements) {
  VLSIP_REQUIRE(n_elements > 0, "empty stream in memory");
  // The request-fetch stage streams one word per cycle out of the
  // interleaved banks; the pipeline-fill latency plus any bank
  // conflicts are the fetch overhead.
  std::vector<std::uint64_t> words;
  words.reserve(n_elements);
  std::uint64_t issue = 0;
  std::uint64_t last_done = 0;
  for (std::size_t i = 0; i < n_elements; ++i) {
    words.push_back(memory_.read(base_address + i).u);
    last_done =
        std::max(last_done, memory_.access_at(base_address + i, issue));
    ++issue;
  }
  const std::uint64_t overhead =
      last_done > n_elements ? last_done - n_elements : 0;

  arch::Program program = library_program;
  program.stream = arch::decode_stream(words);
  auto stats = configure(program);
  stats.stream_fetch_cycles = overhead;
  stats.cycles += overhead;
  stats_.config.stream_fetch_cycles += overhead;
  stats_.config.cycles += overhead;
  return stats;
}

void AdaptiveProcessor::feed(const std::string& input, arch::Word value) {
  VLSIP_REQUIRE(executor_ != nullptr, "no datapath configured");
  executor_->feed(input, value);
}

ExecStats AdaptiveProcessor::run(std::size_t expected_per_output,
                                 std::uint64_t max_cycles) {
  VLSIP_REQUIRE(executor_ != nullptr, "no datapath configured");
  ExecStats stats = executor_->run(expected_per_output, max_cycles);
  accumulate_exec(stats);
  return stats;
}

ExecStats AdaptiveProcessor::run_streaming(std::size_t expected_per_output,
                                           std::uint64_t max_cycles) {
  VLSIP_REQUIRE(executor_ != nullptr, "no datapath configured");
  VLSIP_REQUIRE(fits_streaming(*program_),
                "streaming datapath exceeds capacity C (§2.5)");
  // With the whole datapath resident no fault can occur; pre-touch every
  // object so a cold configuration cannot fault mid-stream either.
  for (const auto& obj : program_->library) {
    if (!space_.contains(obj.id)) {
      ConfigStats warm;
      pipeline_.request_object(*program_, obj.id, warm);
      accumulate(stats_.faults, warm);
    }
  }
  ExecStats stats = executor_->run(expected_per_output, max_cycles);
  accumulate_exec(stats);
  return stats;
}

const std::vector<arch::Word>& AdaptiveProcessor::output(
    const std::string& name) const {
  VLSIP_REQUIRE(executor_ != nullptr, "no datapath configured");
  return executor_->output(name);
}

void AdaptiveProcessor::accumulate_exec(const ExecStats& stats) {
  ExecStats& e = stats_.exec;
  e.cycles += stats.cycles;
  e.firings += stats.firings;
  e.tokens_moved += stats.tokens_moved;
  e.int_ops += stats.int_ops;
  e.float_ops += stats.float_ops;
  e.mem_ops += stats.mem_ops;
  e.transport_ops += stats.transport_ops;
  e.faults += stats.faults;
  e.fault_cycles += stats.fault_cycles;
  e.release_tokens += stats.release_tokens;
  e.idle_cycles += stats.idle_cycles;
  e.wakes += stats.wakes;
  e.quiescence_skips += stats.quiescence_skips;
  ++stats_.runs;
  if (stats.completed) ++stats_.runs_completed;
  if (stats.deadlocked) ++stats_.runs_deadlocked;
}

void AdaptiveProcessor::export_obs(obs::MetricRegistry& registry,
                                   const std::string& prefix) const {
  const auto& c = stats_.config;
  registry.counter(prefix + "config.cycles") += c.cycles;
  registry.counter(prefix + "config.elements") += c.elements;
  registry.counter(prefix + "config.requests") += c.object_requests;
  registry.counter(prefix + "config.hits") += c.hits;
  registry.counter(prefix + "config.misses") += c.misses;
  registry.counter(prefix + "config.evictions") += c.evictions;
  registry.counter(prefix + "config.write_backs") += c.write_backs;
  registry.counter(prefix + "config.write_back_stalls") +=
      c.write_back_stalls;
  registry.counter(prefix + "config.route_failures") += c.route_failures;
  registry.counter(prefix + "config.stream_fetch_cycles") +=
      c.stream_fetch_cycles;
  registry.counter(prefix + "datapaths_configured") +=
      stats_.datapaths_configured;
  registry.counter(prefix + "fault_requests") +=
      stats_.faults.object_requests;
  registry.counter(prefix + "fault_evictions") += stats_.faults.evictions;
  registry.counter(prefix + "fault_write_backs") +=
      stats_.faults.write_backs;
  registry.counter(prefix + "releases") += stats_.releases;
  registry.counter(prefix + "release_tokens") += stats_.release_tokens;
  registry.counter(prefix + "release_wave_cycles") +=
      stats_.release_wave_cycles;

  const auto& e = stats_.exec;
  registry.counter(prefix + "exec.runs") += stats_.runs;
  registry.counter(prefix + "exec.runs_completed") += stats_.runs_completed;
  registry.counter(prefix + "exec.runs_deadlocked") +=
      stats_.runs_deadlocked;
  registry.counter(prefix + "exec.cycles") += e.cycles;
  registry.counter(prefix + "exec.firings") += e.firings;
  registry.counter(prefix + "exec.tokens_moved") += e.tokens_moved;
  registry.counter(prefix + "exec.int_ops") += e.int_ops;
  registry.counter(prefix + "exec.float_ops") += e.float_ops;
  registry.counter(prefix + "exec.mem_ops") += e.mem_ops;
  registry.counter(prefix + "exec.transport_ops") += e.transport_ops;
  registry.counter(prefix + "exec.faults") += e.faults;
  registry.counter(prefix + "exec.fault_cycles") += e.fault_cycles;
  registry.counter(prefix + "exec.idle_cycles") += e.idle_cycles;
  registry.counter(prefix + "exec.wakes") += e.wakes;
  registry.counter(prefix + "exec.quiescence_skips") += e.quiescence_skips;

  registry.counter(prefix + "memory.bank_conflicts") +=
      memory_.bank_conflicts();
  network_.export_obs(registry, prefix + "csd.");
}

void AdaptiveProcessor::fold_energy(cost::EnergyActivity& a) const {
  const auto& e = stats_.exec;
  a.units[cost::kEnergyIntOp] += e.int_ops;
  a.units[cost::kEnergyFloatOp] += e.float_ops;
  a.units[cost::kEnergyMemOp] += e.mem_ops;
  a.units[cost::kEnergyTransportOp] += e.transport_ops + e.tokens_moved;
  a.units[cost::kEnergyConfigCycle] += stats_.config.cycles +
                                       stats_.faults.cycles +
                                       stats_.release_wave_cycles;
  // Active/idle cycle split of the executor's lifetime. idle <= cycles
  // by construction; min() keeps the fold total even if a future
  // engine ever violates that.
  const std::uint64_t idle = std::min(e.idle_cycles, e.cycles);
  a.units[cost::kEnergyActiveCycle] += e.cycles - idle;
  a.units[cost::kEnergyIdleCycle] += idle;
  network_.fold_energy(a);
}

std::string AdaptiveProcessor::report() const {
  std::ostringstream out;
  const auto& c = stats_.config;
  out << "adaptive processor: C=" << config_.capacity << ", "
      << config_.memory_blocks << " memory blocks, "
      << network_.channel_count() << " CSD channels\n";
  out << "  configuration: " << stats_.datapaths_configured
      << " datapaths, " << c.cycles << " cycles, " << c.object_requests
      << " requests (" << c.hits << " hits / " << c.misses
      << " misses), " << c.stack_inserts << " stack shifts, "
      << c.promotes << " promotions\n";
  out << "  replacement: " << c.evictions << " evictions, "
      << c.write_backs << " write-backs (" << c.write_back_stalls
      << " stall cycles, " << scheduler_.scheduled()
      << " scheduled)\n";
  out << "  faults: " << stats_.faults.object_requests
      << " serviced requests, " << stats_.faults.evictions
      << " evictions, " << stats_.faults.write_backs
      << " write-backs\n";
  out << "  network: " << chains_.size() << " chains ("
      << chains_.routed() << " routed), " << network_.used_channels()
      << "/" << network_.channel_count() << " channels in use, "
      << chains_.rebuilds() << " refreshes\n";
  out << "  memory: " << memory_.block_count() << " banks, "
      << memory_.bank_conflicts() << " bank conflicts\n";
  out << "  releases: " << stats_.releases << " ("
      << stats_.release_tokens << " tokens, "
      << stats_.release_wave_cycles << " wave cycles)\n";
  return out.str();
}

std::optional<arch::ObjectId> AdaptiveProcessor::handle_defective_object() {
  const auto evicted = space_.reduce_capacity();
  config_.capacity = space_.capacity();
  if (evicted) {
    wsrf_.erase(*evicted);
    // Chains go dormant; the object can fault back into the shrunken
    // stack and re-route.
    if (library_.contains(*evicted)) {
      library_.write_back(library_.fetch(*evicted));
    }
  }
  chains_.refresh();
  if (trace_.enabled()) {
    trace_.record(0, "ap",
                  "defective physical object: capacity now " +
                      std::to_string(config_.capacity));
  }
  return evicted;
}

void AdaptiveProcessor::save(snapshot::Writer& w) const {
  w.section("ap.processor");
  // Geometry fingerprint: restore() targets an AP constructed with the
  // same ApConfig; these fields pin everything the constructor sized.
  w.u32(network_.positions());
  w.u32(network_.channel_count());
  w.i32(config_.memory_blocks);
  w.i32(config_.wsrf_capacity);
  w.i32(config_.exec.edge_capacity);
  w.b(config_.exec.event_driven);
  w.b(config_.exec.allow_faults);
  w.i32(config_.exec.fault_concurrency);

  space_.save(w);
  wsrf_.save(w);
  library_.save(w);
  network_.save(w);
  chains_.save(w);
  scheduler_.save(w);
  memory_.save(w);

  w.b(program_.has_value());
  if (program_) arch::save_program(w, *program_);
  w.b(executor_ != nullptr);
  if (executor_) executor_->save(w);

  save_config_stats(w, stats_.config);
  save_config_stats(w, stats_.faults);
  w.u64(stats_.datapaths_configured);
  w.u64(stats_.releases);
  w.u64(stats_.release_tokens);
  w.u64(stats_.release_wave_cycles);
  save_exec_stats(w, stats_.exec);
  w.u64(stats_.runs);
  w.u64(stats_.runs_completed);
  w.u64(stats_.runs_deadlocked);
}

void AdaptiveProcessor::restore(snapshot::Reader& r) {
  r.section("ap.processor");
  const auto positions = r.u32();
  const auto channels = r.u32();
  const auto memory_blocks = r.i32();
  const auto wsrf_capacity = r.i32();
  const auto edge_capacity = r.i32();
  const bool event_driven = r.b();
  const bool allow_faults = r.b();
  const auto fault_concurrency = r.i32();
  if (positions != network_.positions() ||
      channels != network_.channel_count() ||
      memory_blocks != config_.memory_blocks ||
      wsrf_capacity != config_.wsrf_capacity ||
      edge_capacity != config_.exec.edge_capacity ||
      event_driven != config_.exec.event_driven ||
      allow_faults != config_.exec.allow_faults ||
      fault_concurrency != config_.exec.fault_concurrency) {
    throw snapshot::SnapshotError(
        "snapshot was taken on an AP with a different configuration");
  }

  space_.restore(r);
  // Capacity may have shrunk since construction (defective objects);
  // the object space carries the live value.
  config_.capacity = space_.capacity();
  wsrf_.restore(r);
  library_.restore(r);
  network_.restore(r);
  chains_.restore(r);
  scheduler_.restore(r);
  memory_.restore(r);

  const bool has_program = r.b();
  if (has_program) {
    program_ = arch::restore_program(r);
  } else {
    program_.reset();
  }
  const bool has_executor = r.b();
  executor_.reset();
  spare_.reset();
  if (has_executor) {
    VLSIP_REQUIRE(program_.has_value(),
                  "snapshot has an executor but no program");
    // Construct fresh: the constructor rebuilds all structural state
    // from the program deterministically; restore() then overwrites
    // the mutable machine state.
    executor_ = std::make_unique<Executor>(
        *program_, space_, memory_, config_.exec,
        config_.enable_trace ? &trace_ : nullptr);
    executor_->restore(r);
    install_execution_hooks();
  }

  stats_.config = restore_config_stats(r);
  stats_.faults = restore_config_stats(r);
  stats_.datapaths_configured = r.u64();
  stats_.releases = r.u64();
  stats_.release_tokens = r.u64();
  stats_.release_wave_cycles = r.u64();
  stats_.exec = restore_exec_stats(r);
  stats_.runs = r.u64();
  stats_.runs_completed = r.u64();
  stats_.runs_deadlocked = r.u64();
}

void AdaptiveProcessor::release_datapath() {
  if (!program_) return;
  if (executor_) {
    stats_.release_wave_cycles += executor_->release_wave_depth();
    stats_.release_tokens += executor_->release();
  }
  chains_.clear();
  // Objects stay cached in the object space; only their active pins and
  // chains go away.
  for (const auto& obj : program_->library) {
    if (wsrf_.lookup(obj.id) != nullptr) wsrf_.set_active(obj.id, false);
  }
  ++stats_.releases;
  spare_ = std::move(executor_);
  program_.reset();
}

}  // namespace vlsip::ap
