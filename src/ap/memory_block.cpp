#include "ap/memory_block.hpp"

#include <algorithm>

#include "arch/serialize.hpp"
#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

MemoryBlock::MemoryBlock(MemoryBlockConfig config)
    : config_(config), data_(config.words, arch::make_word_u(0)) {
  VLSIP_REQUIRE(config.words > 0, "memory block must be non-empty");
  VLSIP_REQUIRE(config.access_latency >= 1, "latency must be positive");
}

arch::Word MemoryBlock::read(std::size_t address) const {
  VLSIP_REQUIRE(address < data_.size(), "read address out of range");
  if (poisoned_) return poison_word();
  return data_[address];
}

void MemoryBlock::write(std::size_t address, arch::Word value) {
  VLSIP_REQUIRE(address < data_.size(), "write address out of range");
  if (poisoned_) return;  // dead cells absorb the write
  data_[address] = value;
}

void MemoryBlock::poison() { poisoned_ = true; }

arch::Word MemoryBlock::poison_word() {
  return arch::make_word_u(0xDEADDEADDEADDEADull);
}

void MemoryBlock::fill(std::size_t base,
                       const std::vector<arch::Word>& values) {
  VLSIP_REQUIRE(base + values.size() <= data_.size(),
                "fill range out of bounds");
  for (std::size_t i = 0; i < values.size(); ++i) {
    data_[base + i] = values[i];
  }
}

MemorySystem::MemorySystem(int blocks, MemoryBlockConfig config)
    : config_(config) {
  VLSIP_REQUIRE(blocks >= 1, "need at least one memory block");
  blocks_.reserve(static_cast<std::size_t>(blocks));
  for (int i = 0; i < blocks; ++i) blocks_.emplace_back(config);
  bank_busy_until_.assign(static_cast<std::size_t>(blocks), 0);
}

std::size_t MemorySystem::size() const {
  return blocks_.size() * config_.words;
}

int MemorySystem::bank_of(std::size_t address) const {
  VLSIP_REQUIRE(address < size(), "address out of range");
  return static_cast<int>(address % blocks_.size());
}

arch::Word MemorySystem::read(std::size_t address) const {
  VLSIP_REQUIRE(address < size(), "read address out of range");
  return blocks_[address % blocks_.size()].read(address / blocks_.size());
}

void MemorySystem::write(std::size_t address, arch::Word value) {
  VLSIP_REQUIRE(address < size(), "write address out of range");
  blocks_[address % blocks_.size()].write(address / blocks_.size(), value);
}

void MemorySystem::fill(std::size_t base,
                        const std::vector<arch::Word>& values) {
  VLSIP_REQUIRE(base + values.size() <= size(), "fill range out of bounds");
  for (std::size_t i = 0; i < values.size(); ++i) {
    write(base + i, values[i]);
  }
}

void MemorySystem::poison_block(int bank) {
  VLSIP_REQUIRE(bank >= 0 && bank < block_count(), "bank out of range");
  blocks_[static_cast<std::size_t>(bank)].poison();
}

bool MemorySystem::block_poisoned(int bank) const {
  VLSIP_REQUIRE(bank >= 0 && bank < block_count(), "bank out of range");
  return blocks_[static_cast<std::size_t>(bank)].poisoned();
}

int MemorySystem::poisoned_blocks() const {
  int n = 0;
  for (const auto& b : blocks_) {
    if (b.poisoned()) ++n;
  }
  return n;
}

std::uint64_t MemorySystem::access_at(std::size_t address,
                                      std::uint64_t now) {
  const auto bank = static_cast<std::size_t>(bank_of(address));
  std::uint64_t start = now;
  if (bank_busy_until_[bank] > now) {
    start = bank_busy_until_[bank];
    ++conflicts_;
  }
  const std::uint64_t done =
      start + static_cast<std::uint64_t>(config_.access_latency);
  bank_busy_until_[bank] = done;
  return done;
}

ObjectLibrary::ObjectLibrary(int load_latency) : load_latency_(load_latency) {
  VLSIP_REQUIRE(load_latency >= 1, "load latency must be positive");
}

void ObjectLibrary::store(const arch::LogicalObject& object) {
  VLSIP_REQUIRE(object.id != arch::kNoObject, "object must have an id");
  objects_[object.id] = object;
}

bool ObjectLibrary::contains(arch::ObjectId id) const {
  return objects_.contains(id);
}

const arch::LogicalObject& ObjectLibrary::fetch(arch::ObjectId id) const {
  const auto it = objects_.find(id);
  VLSIP_REQUIRE(it != objects_.end(), "object not in library");
  return it->second;
}

void ObjectLibrary::write_back(const arch::LogicalObject& object) {
  const auto it = objects_.find(object.id);
  VLSIP_REQUIRE(it != objects_.end(),
                "write-back of object the library never held");
  it->second = object;
  ++write_backs_;
}

void MemoryBlock::save(snapshot::Writer& w) const {
  w.section("ap.memory_block");
  w.u64(data_.size());
  std::uint64_t nonzero = 0;
  for (const auto& word : data_) {
    if (word.u != 0) ++nonzero;
  }
  w.u64(nonzero);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (data_[i].u != 0) {
      w.u64(i);
      w.u64(data_[i].u);
    }
  }
  w.b(poisoned_);
}

void MemoryBlock::restore(snapshot::Reader& r) {
  r.section("ap.memory_block");
  const std::uint64_t words = r.u64();
  VLSIP_REQUIRE(words == data_.size(),
                "snapshot memory-block geometry mismatch");
  std::fill(data_.begin(), data_.end(), arch::make_word_u(0));
  const std::uint64_t nonzero = r.count(16);
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    const std::uint64_t index = r.u64();
    VLSIP_REQUIRE(index < data_.size(), "snapshot memory word out of range");
    data_[static_cast<std::size_t>(index)] = arch::make_word_u(r.u64());
  }
  poisoned_ = r.b();
}

void MemorySystem::save(snapshot::Writer& w) const {
  w.section("ap.memory_system");
  w.u64(blocks_.size());
  for (const auto& b : blocks_) b.save(w);
  w.vec_u64(bank_busy_until_);
  w.u64(conflicts_);
}

void MemorySystem::restore(snapshot::Reader& r) {
  r.section("ap.memory_system");
  const std::uint64_t n = r.u64();
  VLSIP_REQUIRE(n == blocks_.size(), "snapshot memory bank count mismatch");
  for (auto& b : blocks_) b.restore(r);
  bank_busy_until_ = r.vec_u64();
  VLSIP_REQUIRE(bank_busy_until_.size() == blocks_.size(),
                "snapshot bank-busy vector mismatch");
  conflicts_ = r.u64();
}

void ObjectLibrary::save(snapshot::Writer& w) const {
  w.section("ap.object_library");
  w.i32(load_latency_);
  w.u64(objects_.size());
  for (const auto& [id, object] : objects_) {
    arch::save_object(w, object);
  }
  w.u64(write_backs_);
}

void ObjectLibrary::restore(snapshot::Reader& r) {
  r.section("ap.object_library");
  load_latency_ = r.i32();
  objects_.clear();
  const std::uint64_t n = r.count(27);
  for (std::uint64_t i = 0; i < n; ++i) {
    arch::LogicalObject object = arch::restore_object(r);
    const arch::ObjectId id = object.id;
    objects_.emplace(id, std::move(object));
  }
  write_backs_ = r.u64();
}

}  // namespace vlsip::ap
