#include "ap/object_space.hpp"

#include <sstream>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::ap {

ObjectSpace::ObjectSpace(int capacity) : capacity_(capacity) {
  VLSIP_REQUIRE(capacity >= 1, "capacity must be positive");
  stack_.reserve(static_cast<std::size_t>(capacity));
}

std::optional<int> ObjectSpace::find(arch::ObjectId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

int ObjectSpace::position_of(arch::ObjectId id) const {
  const auto pos = find(id);
  VLSIP_REQUIRE(pos.has_value(), "object is not resident");
  return *pos;
}

arch::ObjectId ObjectSpace::at(int position) const {
  VLSIP_REQUIRE(position >= 0 && position < size(), "position out of range");
  return stack_[static_cast<std::size_t>(position)];
}

arch::ObjectId ObjectSpace::bottom() const {
  VLSIP_REQUIRE(!empty(), "stack is empty");
  return stack_.back();
}

void ObjectSpace::reindex(std::size_t from) {
  for (std::size_t i = from; i < stack_.size(); ++i) {
    index_[stack_[i]] = static_cast<int>(i);
  }
}

void ObjectSpace::insert_top(arch::ObjectId id) {
  VLSIP_REQUIRE(!full(), "object space is full");
  VLSIP_REQUIRE(!contains(id), "object already resident");
  stack_.insert(stack_.begin(), id);
  reindex(0);
  ++version_;
}

arch::ObjectId ObjectSpace::evict_bottom() {
  VLSIP_REQUIRE(!empty(), "stack is empty");
  const arch::ObjectId id = stack_.back();
  stack_.pop_back();
  index_.erase(id);
  ++version_;
  return id;
}

void ObjectSpace::remove(arch::ObjectId id) {
  const auto pos = find(id);
  VLSIP_REQUIRE(pos.has_value(), "object is not resident");
  stack_.erase(stack_.begin() + *pos);
  index_.erase(id);
  reindex(static_cast<std::size_t>(*pos));
  ++version_;
}

int ObjectSpace::promote(arch::ObjectId id) {
  const auto pos = find(id);
  VLSIP_REQUIRE(pos.has_value(), "object is not resident");
  if (*pos == 0) return 0;
  stack_.erase(stack_.begin() + *pos);
  stack_.insert(stack_.begin(), id);
  reindex(0);
  ++version_;
  return *pos;
}

std::optional<arch::ObjectId> ObjectSpace::reduce_capacity() {
  VLSIP_REQUIRE(capacity_ > 1, "cannot lose the last physical object");
  const bool was_full = full();
  --capacity_;
  if (was_full) return evict_bottom();
  return std::nullopt;
}

std::string ObjectSpace::render() const {
  std::ostringstream out;
  out << "top[";
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    if (i) out << " ";
    out << stack_[i];
  }
  out << "]bottom (" << size() << "/" << capacity_ << ")";
  return out.str();
}

void ObjectSpace::save(snapshot::Writer& w) const {
  w.section("ap.object_space");
  w.i32(capacity_);
  w.vec_u32(stack_);
  w.u64(version_);
}

void ObjectSpace::restore(snapshot::Reader& r) {
  r.section("ap.object_space");
  capacity_ = r.i32();
  stack_ = r.vec_u32();
  version_ = r.u64();
  index_.clear();
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    index_[stack_[i]] = static_cast<int>(i);
  }
}

}  // namespace vlsip::ap
