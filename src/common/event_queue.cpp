#include "common/event_queue.hpp"

#include "common/require.hpp"

namespace vlsip {

void EventQueue::schedule_at(Cycle when, Handler fn) {
  VLSIP_REQUIRE(fn != nullptr, "cannot schedule a null handler");
  heap_.push(Item{when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Cycle now, Cycle delay, Handler fn) {
  schedule_at(now + delay, std::move(fn));
}

void EventQueue::run_until(Cycle now) {
  while (!heap_.empty() && heap_.top().when <= now) {
    // Copy out before pop so the handler can schedule new events.
    Item item = heap_.top();
    heap_.pop();
    item.fn(item.when);
  }
}

Cycle EventQueue::next_time() const {
  VLSIP_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().when;
}

}  // namespace vlsip
