#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/require.hpp"

namespace vlsip {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  VLSIP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  VLSIP_REQUIRE(row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(Row{false, std::move(row)});
}

void AsciiTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c]
          << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&](std::ostringstream& out) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "|";
    }
    out << "\n";
  };

  std::ostringstream out;
  emit_row(out, header_);
  emit_rule(out);
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_rule(out);
    } else {
      emit_row(out, row.cells);
    }
  }
  return out.str();
}

std::string format_sig(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string format_pow10(double v, int mantissa_digits) {
  if (v == 0.0) return "0";
  const bool neg = v < 0;
  double a = std::fabs(v);
  int exp = static_cast<int>(std::floor(std::log10(a)));
  double mant = a / std::pow(10.0, exp);
  // Guard rounding at the decade boundary (e.g. 9.9999 -> 10.0).
  char mbuf[32];
  std::snprintf(mbuf, sizeof(mbuf), "%.*f", mantissa_digits, mant);
  if (std::string(mbuf).substr(0, 2) == "10") {
    ++exp;
    std::snprintf(mbuf, sizeof(mbuf), "%.*f", mantissa_digits, mant / 10.0);
  }
  std::ostringstream out;
  if (neg) out << "-";
  out << mbuf << " x 10^" << exp;
  return out.str();
}

}  // namespace vlsip
