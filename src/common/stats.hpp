// Streaming statistics and histograms for simulator measurements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vlsip {

/// Welford-style running mean/variance with min/max tracking.
/// Numerically stable for long simulations (billions of samples).
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Raw accumulator state, for checkpointing. min/max are ±inf when
  /// the accumulator is empty — preserve them bit-exactly.
  struct Raw {
    std::size_t n;
    double mean;
    double m2;
    double min;
    double max;
  };
  Raw raw() const { return Raw{n_, mean_, m2_, min_, max_}; }
  void set_raw(const Raw& r) {
    n_ = r.n;
    mean_ = r.mean;
    m2_ = r.m2;
    min_ = r.min;
    max_ = r.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples are
/// clamped into the first/last bucket so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  /// Bucket-wise sum of another histogram with the identical shape
  /// (same lo/hi/bucket count) — parallel reduction of per-worker
  /// histograms.
  void merge(const Histogram& other);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated
  /// linearly within the containing bucket. Returns lo for an empty
  /// histogram.
  double quantile(double q) const;

  /// Compact multi-line ASCII rendering, used by bench binaries.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact sample percentile with linear interpolation between order
/// statistics (the "linear" / type-7 definition): percentile(s, 0.5) is
/// the median, percentile(s, 0.99) the p99. `q` is clamped to [0, 1];
/// an empty sample set yields 0. Takes the samples by value — it sorts
/// its own copy.
double percentile(std::vector<double> samples, double q);

}  // namespace vlsip
