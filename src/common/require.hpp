// Precondition / invariant checking for the simulator.
//
// The simulator is deterministic: a violated precondition is a programming
// error in the caller or a corrupted model, never an environmental fault.
// We therefore throw (so tests can assert on misuse) instead of aborting.
#pragma once

#include <stdexcept>
#include <string>

namespace vlsip {

/// Thrown when a public-API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant of the model is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant failed: " + expr +
                       (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace detail
}  // namespace vlsip

/// Check a caller-facing precondition; throws vlsip::PreconditionError.
#define VLSIP_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::vlsip::detail::throw_precondition(#expr, __FILE__, __LINE__,    \
                                          (msg));                      \
    }                                                                   \
  } while (false)

/// Check an internal invariant; throws vlsip::InvariantError.
#define VLSIP_INVARIANT(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::vlsip::detail::throw_invariant(#expr, __FILE__, __LINE__,       \
                                       (msg));                         \
    }                                                                   \
  } while (false)
