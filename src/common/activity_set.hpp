// Activity tracking for the event-driven cycle engine.
//
// Cycle-stepped kernels (dataflow executor, NoC fabric, CSD handshakes)
// historically scanned every object every cycle, even when most of the
// fabric sat in the paper's §3.3 inactive/sleep states. ActivitySet and
// WakeQueue turn those scans into work proportional to the *active*
// component count:
//
//  - ActivitySet is a dense bitword set over ids [0, n): O(1) insert
//    with free deduplication, cache-friendly ascending-order iteration
//    (one 64-bit word covers 64 ids), and an ordered drain that visits
//    ids exactly in the order a dense `for (id = 0; id < n; ++id)` scan
//    would — including ids inserted *during* the drain, which are
//    visited in the same pass iff they lie ahead of the cursor. That
//    property is what lets an event-driven engine stay bit-identical to
//    the dense scan it replaces.
//
//    The set is *two-level* (hierarchical): one summary word covers 64
//    bitwords (4096 ids), with summary bit j set iff bitword j is
//    nonzero. The drain's advance-to-next-active-word step walks the
//    summary — SIMD-accelerated via simd::first_nonzero_word — so a
//    quiescent region costs O(words/64) instead of O(words). At the
//    Epiphany-V-class 1024-cluster geometry (tens of thousands of ids)
//    that is what keeps the per-cycle cost proportional to activity,
//    not chip size. The summary is derived state: checkpoints still
//    carry the flat bitwords (words()/restore_words()), and restore
//    rebuilds the summary, so the snapshot format is unchanged.
//
//  - WakeQueue schedules ids to re-enter the set at a future cycle
//    (latency expiry, fault-service completion). It is a plain binary
//    min-heap of (cycle, id); duplicates are allowed and harmless
//    because delivery lands in an ActivitySet, which deduplicates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"

namespace vlsip {

class ActivitySet {
 public:
  ActivitySet() = default;
  explicit ActivitySet(std::size_t n) { reset(n); }

  /// Resizes to cover ids [0, n) and clears membership.
  void reset(std::size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
    summary_.assign((words_.size() + 63) / 64, 0);
    count_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// O(1). Returns true if `id` was newly inserted.
  bool insert(std::uint32_t id) {
    const std::uint64_t bit = 1ull << (id & 63);
    const std::size_t wi = id >> 6;
    std::uint64_t& w = words_[wi];
    if (w & bit) return false;
    if (w == 0) summary_[wi >> 6] |= 1ull << (wi & 63);
    w |= bit;
    ++count_;
    return true;
  }

  bool contains(std::uint32_t id) const {
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }

  /// O(1). Returns true if `id` was present.
  bool erase(std::uint32_t id) {
    const std::uint64_t bit = 1ull << (id & 63);
    const std::size_t wi = id >> 6;
    std::uint64_t& w = words_[wi];
    if (!(w & bit)) return false;
    w &= ~bit;
    if (w == 0) summary_[wi >> 6] &= ~(1ull << (wi & 63));
    --count_;
    return true;
  }

  void clear() {
    std::fill(words_.begin(), words_.end(), 0ull);
    std::fill(summary_.begin(), summary_.end(), 0ull);
    count_ = 0;
  }

  /// Marks every id in [0, size) active — used to prime a run so the
  /// first cycle scans everything, exactly like the dense loop, after
  /// which activity narrows to live components.
  void fill() {
    if (words_.empty()) return;
    std::fill(words_.begin(), words_.end(), ~0ull);
    const std::size_t tail = size_ & 63;
    if (tail) words_.back() = (1ull << tail) - 1;
    std::fill(summary_.begin(), summary_.end(), ~0ull);
    const std::size_t stail = words_.size() & 63;
    if (stail) summary_.back() = (1ull << stail) - 1;
    count_ = size_;
  }

  /// Ordered drain with the dense-scan insertion semantics: visits
  /// members in ascending id order, clearing each before calling
  /// `fn(id)`. `fn` may insert ids; an id inserted at position > the
  /// current cursor is visited in this same drain, an id <= the cursor
  /// stays set for the next drain — exactly how a dense ascending scan
  /// sees same-cycle mutations.
  ///
  /// The word cursor advances through the summary level, so sparse
  /// drains skip 4096 quiescent ids per summary word probe (and the
  /// probe itself tests several summary words per SIMD compare).
  template <typename Fn>
  void drain_in_order(Fn&& fn) {
    if (count_ == 0) return;
    std::size_t wi = next_active_word(0);
    while (wi < words_.size()) {
      // Mask of bits not yet passed by the cursor within this word.
      std::uint64_t mask = ~0ull;
      while (std::uint64_t cur = words_[wi] & mask) {
        const int b = __builtin_ctzll(cur);
        std::uint64_t& w = words_[wi];
        w &= ~(1ull << b);
        if (w == 0) summary_[wi >> 6] &= ~(1ull << (wi & 63));
        --count_;
        // The cursor moves past bit b: re-inserted bits <= b wait for
        // the next drain.
        mask = (b == 63) ? 0ull : ~((2ull << b) - 1);
        fn(static_cast<std::uint32_t>(wi * 64 + static_cast<unsigned>(b)));
        if (mask == 0) break;
      }
      // Bits inserted at or behind the word cursor (including back into
      // this word under the bit cursor) wait for the next drain; the
      // summary keeps them without further bookkeeping.
      if (wi + 1 >= words_.size()) break;
      // Dense fast path: the next word is live, so the summary walk
      // would land right back on it — one load keeps the saturated case
      // at the flat set's cost.
      if (words_[wi + 1] != 0) {
        ++wi;
        continue;
      }
      wi = next_active_word(wi + 1);
    }
  }

  /// Copies the members in ascending order into `out` (cleared first)
  /// and empties the set.
  void drain_to(std::vector<std::uint32_t>& out) {
    out.clear();
    drain_in_order([&out](std::uint32_t id) { out.push_back(id); });
  }

  /// Raw bitwords, for checkpointing. Pair with restore_words(). The
  /// snapshot format is the flat level only — the summary is derived
  /// and rebuilt on restore.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Restores membership from bitwords previously taken via words()
  /// for a set of the same size; count and the summary level are
  /// recomputed from the bits.
  void restore_words(std::size_t size, std::vector<std::uint64_t> words) {
    size_ = size;
    words_ = std::move(words);
    count_ = simd::popcount_words(words_.data(), words_.size());
    summary_.assign((words_.size() + 63) / 64, 0);
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) summary_[wi >> 6] |= 1ull << (wi & 63);
    }
  }

 private:
  /// Smallest word index >= from whose bitword is nonzero, or
  /// words_.size(). Two probes: the partial summary word containing
  /// `from`, then a SIMD sweep over the remaining summary words.
  std::size_t next_active_word(std::size_t from) const {
    const std::size_t nwords = words_.size();
    if (from >= nwords) return nwords;
    std::size_t si = from >> 6;
    const std::uint64_t first =
        summary_[si] & ~((1ull << (from & 63)) - 1);
    if (first != 0) {
      return (si << 6) + static_cast<std::size_t>(__builtin_ctzll(first));
    }
    ++si;
    const std::size_t hit =
        simd::first_nonzero_word(summary_.data() + si, summary_.size() - si);
    if (si + hit >= summary_.size()) return nwords;
    return ((si + hit) << 6) +
           static_cast<std::size_t>(__builtin_ctzll(summary_[si + hit]));
  }

  std::vector<std::uint64_t> words_;
  /// summary_[k] bit j = words_[k * 64 + j] != 0.
  std::vector<std::uint64_t> summary_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

/// Min-heap of (cycle, id) wake-ups feeding an ActivitySet.
class WakeQueue {
 public:
  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void schedule(std::uint64_t when, std::uint32_t id) {
    heap_.push_back(Entry{when, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Earliest pending wake time; empty() must be false.
  std::uint64_t next_time() const { return heap_.front().when; }

  /// Moves every id due at or before `now` into `into`; returns how
  /// many wake-ups were delivered (duplicates included — the set
  /// deduplicates, but each delivery is one heap pop of work).
  std::size_t pop_due(std::uint64_t now, ActivitySet& into) {
    std::size_t delivered = 0;
    while (!heap_.empty() && heap_.front().when <= now) {
      into.insert(heap_.front().id);
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      ++delivered;
    }
    return delivered;
  }

  /// Visits every entry in raw heap-array order, for checkpointing.
  /// Replaying the same sequence through push_raw() reproduces the
  /// exact heap layout (the array already satisfies the heap
  /// property), so pop order — and therefore simulation behaviour —
  /// is bit-identical after a restore.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : heap_) fn(e.when, e.id);
  }

  /// Appends an entry without re-heapifying. Only valid for replaying
  /// a sequence produced by for_each(); arbitrary order would break
  /// the heap invariant.
  void push_raw(std::uint64_t when, std::uint32_t id) {
    heap_.push_back(Entry{when, id});
  }

 private:
  struct Entry {
    std::uint64_t when;
    std::uint32_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when > b.when;
    }
  };
  std::vector<Entry> heap_;
};

}  // namespace vlsip
