// Activity tracking for the event-driven cycle engine.
//
// Cycle-stepped kernels (dataflow executor, NoC fabric, CSD handshakes)
// historically scanned every object every cycle, even when most of the
// fabric sat in the paper's §3.3 inactive/sleep states. ActivitySet and
// WakeQueue turn those scans into work proportional to the *active*
// component count:
//
//  - ActivitySet is a dense bitword set over ids [0, n): O(1) insert
//    with free deduplication, cache-friendly ascending-order iteration
//    (one 64-bit word covers 64 ids), and an ordered drain that visits
//    ids exactly in the order a dense `for (id = 0; id < n; ++id)` scan
//    would — including ids inserted *during* the drain, which are
//    visited in the same pass iff they lie ahead of the cursor. That
//    property is what lets an event-driven engine stay bit-identical to
//    the dense scan it replaces.
//
//  - WakeQueue schedules ids to re-enter the set at a future cycle
//    (latency expiry, fault-service completion). It is a plain binary
//    min-heap of (cycle, id); duplicates are allowed and harmless
//    because delivery lands in an ActivitySet, which deduplicates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace vlsip {

class ActivitySet {
 public:
  ActivitySet() = default;
  explicit ActivitySet(std::size_t n) { reset(n); }

  /// Resizes to cover ids [0, n) and clears membership.
  void reset(std::size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
    count_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// O(1). Returns true if `id` was newly inserted.
  bool insert(std::uint32_t id) {
    const std::uint64_t bit = 1ull << (id & 63);
    std::uint64_t& w = words_[id >> 6];
    if (w & bit) return false;
    w |= bit;
    ++count_;
    return true;
  }

  bool contains(std::uint32_t id) const {
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }

  /// O(1). Returns true if `id` was present.
  bool erase(std::uint32_t id) {
    const std::uint64_t bit = 1ull << (id & 63);
    std::uint64_t& w = words_[id >> 6];
    if (!(w & bit)) return false;
    w &= ~bit;
    --count_;
    return true;
  }

  void clear() {
    std::fill(words_.begin(), words_.end(), 0ull);
    count_ = 0;
  }

  /// Marks every id in [0, size) active — used to prime a run so the
  /// first cycle scans everything, exactly like the dense loop, after
  /// which activity narrows to live components.
  void fill() {
    if (words_.empty()) return;
    std::fill(words_.begin(), words_.end(), ~0ull);
    const std::size_t tail = size_ & 63;
    if (tail) words_.back() = (1ull << tail) - 1;
    count_ = size_;
  }

  /// Ordered drain with the dense-scan insertion semantics: visits
  /// members in ascending id order, clearing each before calling
  /// `fn(id)`. `fn` may insert ids; an id inserted at position > the
  /// current cursor is visited in this same drain, an id <= the cursor
  /// stays set for the next drain — exactly how a dense ascending scan
  /// sees same-cycle mutations.
  template <typename Fn>
  void drain_in_order(Fn&& fn) {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      // Mask of bits not yet passed by the cursor within this word.
      std::uint64_t mask = ~0ull;
      while (std::uint64_t cur = words_[wi] & mask) {
        const int b = __builtin_ctzll(cur);
        words_[wi] &= ~(1ull << b);
        --count_;
        // The cursor moves past bit b: re-inserted bits <= b wait for
        // the next drain.
        mask = (b == 63) ? 0ull : ~((2ull << b) - 1);
        fn(static_cast<std::uint32_t>(wi * 64 + static_cast<unsigned>(b)));
        if (mask == 0) break;
      }
    }
  }

  /// Copies the members in ascending order into `out` (cleared first)
  /// and empties the set.
  void drain_to(std::vector<std::uint32_t>& out) {
    out.clear();
    drain_in_order([&out](std::uint32_t id) { out.push_back(id); });
  }

  /// Raw bitwords, for checkpointing. Pair with restore_words().
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Restores membership from bitwords previously taken via words()
  /// for a set of the same size; count is recomputed from the bits.
  void restore_words(std::size_t size, std::vector<std::uint64_t> words) {
    size_ = size;
    words_ = std::move(words);
    count_ = 0;
    for (const std::uint64_t w : words_) {
      count_ += static_cast<std::size_t>(__builtin_popcountll(w));
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
};

/// Min-heap of (cycle, id) wake-ups feeding an ActivitySet.
class WakeQueue {
 public:
  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void schedule(std::uint64_t when, std::uint32_t id) {
    heap_.push_back(Entry{when, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Earliest pending wake time; empty() must be false.
  std::uint64_t next_time() const { return heap_.front().when; }

  /// Moves every id due at or before `now` into `into`; returns how
  /// many wake-ups were delivered (duplicates included — the set
  /// deduplicates, but each delivery is one heap pop of work).
  std::size_t pop_due(std::uint64_t now, ActivitySet& into) {
    std::size_t delivered = 0;
    while (!heap_.empty() && heap_.front().when <= now) {
      into.insert(heap_.front().id);
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      ++delivered;
    }
    return delivered;
  }

  /// Visits every entry in raw heap-array order, for checkpointing.
  /// Replaying the same sequence through push_raw() reproduces the
  /// exact heap layout (the array already satisfies the heap
  /// property), so pop order — and therefore simulation behaviour —
  /// is bit-identical after a restore.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : heap_) fn(e.when, e.id);
  }

  /// Appends an entry without re-heapifying. Only valid for replaying
  /// a sequence produced by for_each(); arbitrary order would break
  /// the heap invariant.
  void push_raw(std::uint64_t when, std::uint32_t id) {
    heap_.push_back(Entry{when, id});
  }

 private:
  struct Entry {
    std::uint64_t when;
    std::uint32_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when > b.when;
    }
  };
  std::vector<Entry> heap_;
};

}  // namespace vlsip
