// Cycle-driven event scheduler.
//
// Most of the simulator is cycle-stepped (every component has a step()
// called once per cycle), but a few mechanisms — timers in the sleep
// state, delayed memory responses, wormhole credit returns — are more
// naturally expressed as events scheduled N cycles ahead. EventQueue
// provides that with deterministic FIFO ordering among events that fire
// on the same cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vlsip {

/// Simulation time in cycles.
using Cycle = std::uint64_t;

class EventQueue {
 public:
  using Handler = std::function<void(Cycle now)>;

  /// Schedules `fn` to run at absolute cycle `when`. Events scheduled for
  /// the current cycle (or the past) fire on the next run_until() call.
  void schedule_at(Cycle when, Handler fn);

  /// Schedules `fn` to run `delay` cycles after `now`.
  void schedule_in(Cycle now, Cycle delay, Handler fn);

  /// Runs every event with firing time <= now, in (time, insertion) order.
  /// Handlers may schedule further events, including for the same cycle.
  void run_until(Cycle now);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Firing time of the earliest pending event; empty() must be false.
  Cycle next_time() const;

 private:
  struct Item {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    Handler fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vlsip
