#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace vlsip {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  VLSIP_REQUIRE(hi > lo, "histogram range must be non-empty");
  VLSIP_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  VLSIP_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "histograms must share range and bucket count to merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak == 0 ? 0u
                  : static_cast<unsigned>(counts_[i] * width / peak);
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace vlsip
