#include "common/trace.hpp"

#include <sstream>

namespace vlsip {

void Trace::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  while (capacity_ != 0 && entries_.size() > capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
}

void Trace::record(std::uint64_t cycle, std::string category,
                   std::string message) {
  if (!enabled_) return;
  if (capacity_ != 0 && entries_.size() == capacity_) {
    entries_.pop_front();
    ++dropped_;
  }
  entries_.push_back(Entry{cycle, std::move(category), std::move(message)});
}

std::size_t Trace::count(const std::string& category) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.category == category) ++n;
  }
  return n;
}

bool Trace::contains(const std::string& needle) const {
  for (const auto& e : entries_) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool Trace::first_cycle_of(const std::string& needle,
                           std::uint64_t& cycle_out) const {
  for (const auto& e : entries_) {
    if (e.message.find(needle) != std::string::npos) {
      cycle_out = e.cycle;
      return true;
    }
  }
  return false;
}

std::string Trace::render() const {
  std::ostringstream out;
  for (const auto& e : entries_) {
    out << e.cycle << "\t" << e.category << "\t" << e.message << "\n";
  }
  return out.str();
}

}  // namespace vlsip
