// ASCII table rendering used by the bench binaries to print paper-style
// tables (paper value vs measured value side by side).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vlsip {

/// Column-aligned ASCII table. Numeric formatting is up to the caller;
/// the table only handles layout.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with single-space-padded `|` separated cells and a rule
  /// under the header.
  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats `v` with `digits` significant digits (bench-table friendly).
std::string format_sig(double v, int digits = 3);

/// Formats `v` in scientific notation "a.bc x 10^k" like the paper tables.
std::string format_pow10(double v, int mantissa_digits = 2);

}  // namespace vlsip
