// Lightweight event tracing.
//
// Components record human-readable trace lines tagged with the cycle and a
// category. Tests assert on traces to pin down *when* things happen, and
// the fig1/fig2/fig7 bench binaries print them as measured timelines.
// Tracing is disabled by default and costs one branch per call when off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vlsip {

class Trace {
 public:
  struct Entry {
    std::uint64_t cycle;
    std::string category;
    std::string message;
  };

  /// A disabled trace records nothing.
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void record(std::uint64_t cycle, std::string category,
              std::string message);

  const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Number of entries whose category equals `category`.
  std::size_t count(const std::string& category) const;

  /// True if any entry's message contains `needle`.
  bool contains(const std::string& needle) const;

  /// Cycle of the first entry whose message contains `needle`;
  /// returns false if none.
  bool first_cycle_of(const std::string& needle,
                      std::uint64_t& cycle_out) const;

  /// Renders "cycle  category  message" lines.
  std::string render() const;

 private:
  bool enabled_;
  std::vector<Entry> entries_;
};

}  // namespace vlsip
