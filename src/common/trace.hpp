// Compatibility shim: tracing moved into the observability spine.
//
// `vlsip::Trace` is now an alias of obs::TraceSink (src/obs/
// trace_sink.hpp), which keeps the whole historical surface —
// record(cycle, category, message), entries(), count(), contains(),
// first_cycle_of(), render(), set_capacity()/dropped() — and adds
// structured events (layer, node id, duration) plus chrome-trace
// export. Existing includes of this header keep compiling; new code
// should include "obs/trace_sink.hpp" directly. This shim is the
// deprecation path documented in docs/OBSERVABILITY.md.
#pragma once

#include "obs/trace_sink.hpp"
