// Lightweight event tracing.
//
// Components record human-readable trace lines tagged with the cycle and a
// category. Tests assert on traces to pin down *when* things happen, and
// the fig1/fig2/fig7 bench binaries print them as measured timelines.
// Tracing is disabled by default and costs one branch per call when off.
//
// A trace may be capacity-capped: set_capacity(N) turns it into a
// bounded ring that keeps only the N most recent entries (oldest are
// evicted and counted in dropped()). Long-running services — the
// runtime/ chip farm in particular — enable this so tracing cannot grow
// memory without bound. Default is unlimited.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

namespace vlsip {

class Trace {
 public:
  struct Entry {
    std::uint64_t cycle;
    std::string category;
    std::string message;
  };

  /// A disabled trace records nothing.
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Caps the trace at `max_entries` (0 = unlimited, the default).
  /// When full, recording evicts the oldest entry. Shrinking below the
  /// current size evicts immediately.
  void set_capacity(std::size_t max_entries);
  std::size_t capacity() const { return capacity_; }

  /// Entries evicted by the capacity cap over the trace's lifetime.
  std::uint64_t dropped() const { return dropped_; }

  void record(std::uint64_t cycle, std::string category,
              std::string message);

  const std::deque<Entry>& entries() const { return entries_; }

  /// Empties the entry buffer. dropped() is a *lifetime* counter and is
  /// deliberately NOT reset: it measures how much history the capacity
  /// cap has cost since construction, so periodic clear()-and-inspect
  /// consumers (the farm's trace scraping, long-soak tests) can still
  /// detect that eviction ever happened. Entries discarded by clear()
  /// itself are not counted as dropped — they were surrendered, not
  /// evicted.
  void clear() { entries_.clear(); }

  /// Number of entries whose category equals `category`.
  std::size_t count(const std::string& category) const;

  /// True if any entry's message contains `needle`.
  bool contains(const std::string& needle) const;

  /// Cycle of the first entry whose message contains `needle`;
  /// returns false if none.
  bool first_cycle_of(const std::string& needle,
                      std::uint64_t& cycle_out) const;

  /// Renders "cycle  category  message" lines.
  std::string render() const;

 private:
  bool enabled_;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<Entry> entries_;
};

}  // namespace vlsip
