#include "common/rng.hpp"

#include <cmath>

#include "common/require.hpp"

namespace vlsip {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // An all-zero state would be absorbing; SplitMix64 cannot emit four
  // consecutive zeros, but keep the guard for explicitness.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) {
  VLSIP_REQUIRE(bound > 0, "uniform() bound must be positive");
  // Lemire's multiply-then-reject method: unbiased and branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::uniform_range(std::int64_t lo, std::int64_t hi) {
  VLSIP_REQUIRE(lo <= hi, "uniform_range() requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range: return a raw draw.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Xoshiro256::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Xoshiro256::geometric(double p) {
  VLSIP_REQUIRE(p > 0.0 && p <= 1.0, "geometric() requires p in (0,1]");
  if (p == 1.0) return 0;
  const double u = uniform01();
  // Inverse-CDF; u in [0,1) keeps log1p argument in (-1, 0].
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

}  // namespace vlsip
