// Portable SIMD kernels for the cycle engine's flat data-structure
// scans (activity bitwords, CSD segment occupancy, NoC flit-ring
// queue lengths).
//
// Every kernel exists twice: a scalar reference in simd::scalar (always
// compiled, the semantic ground truth) and a vector path selected at
// compile time from the target ISA. Dispatch is compile-time — there is
// no function-pointer indirection on the hot path — with one
// relaxed-atomic escape hatch, set_force_scalar(), so differential
// tests can run SIMD-vs-scalar in a single process and require
// bit-identical simulation results (the same discipline as the
// dense-vs-event sweep).
//
// ISA selection (see the root CMakeLists' VLSIP_SIMD options):
//   VLSIP_SIMD_LEVEL 3  AVX2    (-mavx2; 4 x u64 / 32 x u8 per vector)
//   VLSIP_SIMD_LEVEL 2  SSE4.2  (-msse4.2; 2 x u64 / 16 x u8)
//   VLSIP_SIMD_LEVEL 1  NEON    (aarch64 default; 2 x u64 / 16 x u8)
//   VLSIP_SIMD_LEVEL 0  scalar  (any target; also -DVLSIP_SIMD=OFF)
//
// Kernels are *order-exact*: first_nonzero_* return the smallest index,
// masks map lane i to bit i. That is what lets callers keep the
// dense-scan visit order — and therefore bit-identical behaviour — while
// testing 64 ids (or 32 queue slots) per instruction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#if !defined(VLSIP_SIMD_DISABLE)
#if defined(__AVX2__)
#define VLSIP_SIMD_LEVEL 3
#include <immintrin.h>
#elif defined(__SSE4_2__)
#define VLSIP_SIMD_LEVEL 2
#include <nmmintrin.h>
#include <smmintrin.h>
#elif defined(__ARM_NEON)
#define VLSIP_SIMD_LEVEL 1
#include <arm_neon.h>
#else
#define VLSIP_SIMD_LEVEL 0
#endif
#else
#define VLSIP_SIMD_LEVEL 0
#endif

namespace vlsip::simd {

/// Compile-time ISA tier actually built in (see table above).
inline constexpr int kLevel = VLSIP_SIMD_LEVEL;

inline constexpr const char* level_name() {
  switch (kLevel) {
    case 3: return "avx2";
    case 2: return "sse4.2";
    case 1: return "neon";
    default: return "scalar";
  }
}

/// Runtime escape hatch for differential testing: when set, every
/// dispatched kernel takes its scalar reference path. Relaxed atomics —
/// the load compiles to a plain byte read on the hot path; tests toggle
/// it only between runs, never concurrently with one.
inline std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
inline void set_force_scalar(bool on) {
  force_scalar_flag().store(on, std::memory_order_relaxed);
}
inline bool forced_scalar() {
  return force_scalar_flag().load(std::memory_order_relaxed);
}

// ---- scalar reference kernels ---------------------------------------------
//
// These are the semantics; the vector paths below must agree on every
// input (tests/test_common.cpp sweeps them differentially).

namespace scalar {

/// Index of the first nonzero word in [words, words+n), or n.
inline std::size_t first_nonzero_word(const std::uint64_t* words,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (words[i] != 0) return i;
  }
  return n;
}

/// Index of the first nonzero byte in [bytes, bytes+n), or n.
inline std::size_t first_nonzero_byte(const std::uint8_t* bytes,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (bytes[i] != 0) return i;
  }
  return n;
}

/// True iff every word in [words, words+n) is zero.
inline bool range_all_zero(const std::uint64_t* words, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (words[i] != 0) return false;
  }
  return true;
}

/// Bit i of the result = lanes[i] != 0. Requires n <= 32.
inline std::uint32_t nonzero_mask_u16(const std::uint16_t* lanes,
                                      std::size_t n) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (lanes[i] != 0) mask |= (1u << i);
  }
  return mask;
}

/// Bit i of the result = lanes[i] < bound. Requires n <= 32.
inline std::uint32_t lt_mask_u16(const std::uint16_t* lanes, std::size_t n,
                                 std::uint16_t bound) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (lanes[i] < bound) mask |= (1u << i);
  }
  return mask;
}

/// Number of nonzero u32 lanes in [lanes, lanes+n).
inline std::size_t count_nonzero_u32(const std::uint32_t* lanes,
                                     std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (lanes[i] != 0) ++count;
  }
  return count;
}

/// Total population count over [words, words+n).
inline std::size_t popcount_words(const std::uint64_t* words,
                                  std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(words[i]));
  }
  return total;
}

/// Maximum word in [words, words+n); 0 for an empty range.
inline std::uint64_t max_u64(const std::uint64_t* words, std::size_t n) {
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (words[i] > best) best = words[i];
  }
  return best;
}

}  // namespace scalar

// ---- vector kernels --------------------------------------------------------

#if VLSIP_SIMD_LEVEL == 3 || VLSIP_SIMD_LEVEL == 2

namespace detail {

/// movemask over 16-bit compares yields 2 identical bits per lane;
/// compress the even bits so lane i maps to result bit i.
inline std::uint32_t compress_even_bits(std::uint32_t x) {
  x &= 0x55555555u;
  x = (x | (x >> 1)) & 0x33333333u;
  x = (x | (x >> 2)) & 0x0F0F0F0Fu;
  x = (x | (x >> 4)) & 0x00FF00FFu;
  x = (x | (x >> 8)) & 0x0000FFFFu;
  return x;
}

}  // namespace detail

#endif

#if VLSIP_SIMD_LEVEL == 3  // AVX2

namespace detail {

inline std::size_t first_nonzero_word_impl(const std::uint64_t* words,
                                           std::size_t n) {
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    // Lane j zero -> 8 set mask bits at j*8; any clear bit = nonzero.
    const std::uint32_t eqz = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi64(v, zero)));
    if (eqz != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~eqz)) / 8;
    }
  }
  return i + scalar::first_nonzero_word(words + i, n - i);
}

inline std::size_t first_nonzero_byte_impl(const std::uint8_t* bytes,
                                           std::size_t n) {
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bytes + i));
    const std::uint32_t eqz = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    if (eqz != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~eqz));
    }
  }
  return i + scalar::first_nonzero_byte(bytes + i, n - i);
}

inline bool range_all_zero_impl(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_or_si256(acc, _mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(words + i)));
  }
  if (!_mm256_testz_si256(acc, acc)) return false;
  return scalar::range_all_zero(words + i, n - i);
}

inline std::uint32_t nonzero_mask_u16_impl(const std::uint16_t* lanes,
                                           std::size_t n) {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 16 <= n; i += 16) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lanes + i));
    const __m256i eqz = _mm256_cmpeq_epi16(v, zero);
    const std::uint32_t m2 = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(eqz));
    mask |= (compress_even_bits(~m2) & 0xFFFFu) << i;
  }
  if (i < n) mask |= scalar::nonzero_mask_u16(lanes + i, n - i) << i;
  return mask;
}

inline std::uint32_t lt_mask_u16_impl(const std::uint16_t* lanes,
                                      std::size_t n, std::uint16_t bound) {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  if (bound == 0) return 0;
  const __m256i b1 = _mm256_set1_epi16(static_cast<short>(bound - 1));
  for (; i + 16 <= n; i += 16) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lanes + i));
    // Unsigned lane < bound  <=>  min(lane, bound-1) == lane.
    const __m256i lt = _mm256_cmpeq_epi16(_mm256_min_epu16(v, b1), v);
    const std::uint32_t m2 =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(lt));
    mask |= (compress_even_bits(m2) & 0xFFFFu) << i;
  }
  if (i < n) mask |= scalar::lt_mask_u16(lanes + i, n - i, bound) << i;
  return mask;
}

inline std::size_t count_nonzero_u32_impl(const std::uint32_t* lanes,
                                          std::size_t n) {
  std::size_t i = 0;
  std::size_t zeros = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lanes + i));
    const std::uint32_t eqz = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi32(v, zero)));
    zeros += static_cast<std::size_t>(__builtin_popcount(eqz)) / 4;
  }
  std::size_t count = (i - zeros);
  return count + scalar::count_nonzero_u32(lanes + i, n - i);
}

inline std::size_t popcount_words_impl(const std::uint64_t* words,
                                       std::size_t n) {
  // Hardware popcnt on the scalar registers already saturates the port;
  // unroll by 4 to hide the load latency.
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    total += static_cast<std::size_t>(__builtin_popcountll(words[i])) +
             static_cast<std::size_t>(__builtin_popcountll(words[i + 1])) +
             static_cast<std::size_t>(__builtin_popcountll(words[i + 2])) +
             static_cast<std::size_t>(__builtin_popcountll(words[i + 3]));
  }
  return total + scalar::popcount_words(words + i, n - i);
}

inline std::uint64_t max_u64_impl(const std::uint64_t* words,
                                  std::size_t n) {
  // AVX2 has no unsigned 64-bit max; flip the sign bit and use the
  // signed compare to build a blend.
  std::size_t i = 0;
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  __m256i best = _mm256_setzero_si256();
  bool any = false;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    if (!any) {
      best = v;
      any = true;
      continue;
    }
    const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(v, flip),
                                          _mm256_xor_si256(best, flip));
    best = _mm256_blendv_epi8(best, v, gt);
  }
  std::uint64_t out = 0;
  if (any) {
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    out = scalar::max_u64(lanes, 4);
  }
  const std::uint64_t tail = scalar::max_u64(words + i, n - i);
  return out > tail ? out : tail;
}

}  // namespace detail

#elif VLSIP_SIMD_LEVEL == 2  // SSE4.2

namespace detail {

inline std::size_t first_nonzero_word_impl(const std::uint64_t* words,
                                           std::size_t n) {
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
    const std::uint32_t eqz =
        static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi64(v, zero)));
    if (eqz != 0xFFFFu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~eqz & 0xFFFFu)) / 8;
    }
  }
  return i + scalar::first_nonzero_word(words + i, n - i);
}

inline std::size_t first_nonzero_byte_impl(const std::uint8_t* bytes,
                                           std::size_t n) {
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i));
    const std::uint32_t eqz =
        static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)));
    if (eqz != 0xFFFFu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~eqz & 0xFFFFu));
    }
  }
  return i + scalar::first_nonzero_byte(bytes + i, n - i);
}

inline bool range_all_zero_impl(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  __m128i acc = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) {
    acc = _mm_or_si128(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i)));
  }
  if (!_mm_testz_si128(acc, acc)) return false;
  return scalar::range_all_zero(words + i, n - i);
}

inline std::uint32_t nonzero_mask_u16_impl(const std::uint16_t* lanes,
                                           std::size_t n) {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 8 <= n; i += 8) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + i));
    const std::uint32_t m2 =
        static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi16(v, zero)));
    mask |= (compress_even_bits(~m2 & 0xFFFFu) & 0xFFu) << i;
  }
  if (i < n) mask |= scalar::nonzero_mask_u16(lanes + i, n - i) << i;
  return mask;
}

inline std::uint32_t lt_mask_u16_impl(const std::uint16_t* lanes,
                                      std::size_t n, std::uint16_t bound) {
  std::uint32_t mask = 0;
  std::size_t i = 0;
  if (bound == 0) return 0;
  const __m128i b1 = _mm_set1_epi16(static_cast<short>(bound - 1));
  for (; i + 8 <= n; i += 8) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + i));
    const __m128i lt = _mm_cmpeq_epi16(_mm_min_epu16(v, b1), v);
    const std::uint32_t m2 =
        static_cast<std::uint32_t>(_mm_movemask_epi8(lt));
    mask |= (compress_even_bits(m2) & 0xFFu) << i;
  }
  if (i < n) mask |= scalar::lt_mask_u16(lanes + i, n - i, bound) << i;
  return mask;
}

inline std::size_t count_nonzero_u32_impl(const std::uint32_t* lanes,
                                          std::size_t n) {
  std::size_t i = 0;
  std::size_t zeros = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + i));
    const std::uint32_t eqz =
        static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi32(v, zero)));
    zeros += static_cast<std::size_t>(__builtin_popcount(eqz)) / 4;
  }
  return (i - zeros) + scalar::count_nonzero_u32(lanes + i, n - i);
}

inline std::size_t popcount_words_impl(const std::uint64_t* words,
                                       std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    total += static_cast<std::size_t>(__builtin_popcountll(words[i])) +
             static_cast<std::size_t>(__builtin_popcountll(words[i + 1])) +
             static_cast<std::size_t>(__builtin_popcountll(words[i + 2])) +
             static_cast<std::size_t>(__builtin_popcountll(words[i + 3]));
  }
  return total + scalar::popcount_words(words + i, n - i);
}

inline std::uint64_t max_u64_impl(const std::uint64_t* words,
                                  std::size_t n) {
  return scalar::max_u64(words, n);
}

}  // namespace detail

#elif VLSIP_SIMD_LEVEL == 1  // NEON

namespace detail {

inline std::size_t first_nonzero_word_impl(const std::uint64_t* words,
                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(words + i);
    if (vgetq_lane_u64(vorrq_u64(v, vextq_u64(v, v, 1)), 0) != 0) {
      return i + (words[i] != 0 ? 0 : 1);
    }
  }
  return i + scalar::first_nonzero_word(words + i, n - i);
}

inline std::size_t first_nonzero_byte_impl(const std::uint8_t* bytes,
                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(bytes + i);
    if (vmaxvq_u8(v) != 0) {
      return i + scalar::first_nonzero_byte(bytes + i, 16);
    }
  }
  return i + scalar::first_nonzero_byte(bytes + i, n - i);
}

inline bool range_all_zero_impl(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  uint64x2_t acc = vdupq_n_u64(0);
  for (; i + 2 <= n; i += 2) {
    acc = vorrq_u64(acc, vld1q_u64(words + i));
  }
  if ((vgetq_lane_u64(acc, 0) | vgetq_lane_u64(acc, 1)) != 0) return false;
  return scalar::range_all_zero(words + i, n - i);
}

inline std::uint32_t nonzero_mask_u16_impl(const std::uint16_t* lanes,
                                           std::size_t n) {
  return scalar::nonzero_mask_u16(lanes, n);
}

inline std::uint32_t lt_mask_u16_impl(const std::uint16_t* lanes,
                                      std::size_t n, std::uint16_t bound) {
  return scalar::lt_mask_u16(lanes, n, bound);
}

inline std::size_t count_nonzero_u32_impl(const std::uint32_t* lanes,
                                          std::size_t n) {
  return scalar::count_nonzero_u32(lanes, n);
}

inline std::size_t popcount_words_impl(const std::uint64_t* words,
                                       std::size_t n) {
  std::size_t i = 0;
  std::uint64_t total = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(vld1q_u64(words + i));
    total += vaddvq_u8(vcntq_u8(v));
  }
  return static_cast<std::size_t>(total) +
         scalar::popcount_words(words + i, n - i);
}

inline std::uint64_t max_u64_impl(const std::uint64_t* words,
                                  std::size_t n) {
  return scalar::max_u64(words, n);
}

}  // namespace detail

#endif  // VLSIP_SIMD_LEVEL

// ---- dispatched entry points ----------------------------------------------

#if VLSIP_SIMD_LEVEL > 0
#define VLSIP_SIMD_DISPATCH(fn, ...)                             \
  (forced_scalar() ? scalar::fn(__VA_ARGS__)                     \
                   : detail::fn##_impl(__VA_ARGS__))
#else
#define VLSIP_SIMD_DISPATCH(fn, ...) scalar::fn(__VA_ARGS__)
#endif

inline std::size_t first_nonzero_word(const std::uint64_t* words,
                                      std::size_t n) {
  return VLSIP_SIMD_DISPATCH(first_nonzero_word, words, n);
}

inline std::size_t first_nonzero_byte(const std::uint8_t* bytes,
                                      std::size_t n) {
  return VLSIP_SIMD_DISPATCH(first_nonzero_byte, bytes, n);
}

inline bool range_all_zero(const std::uint64_t* words, std::size_t n) {
  return VLSIP_SIMD_DISPATCH(range_all_zero, words, n);
}

inline std::uint32_t nonzero_mask_u16(const std::uint16_t* lanes,
                                      std::size_t n) {
  return VLSIP_SIMD_DISPATCH(nonzero_mask_u16, lanes, n);
}

inline std::uint32_t lt_mask_u16(const std::uint16_t* lanes, std::size_t n,
                                 std::uint16_t bound) {
  return VLSIP_SIMD_DISPATCH(lt_mask_u16, lanes, n, bound);
}

inline std::size_t count_nonzero_u32(const std::uint32_t* lanes,
                                     std::size_t n) {
  return VLSIP_SIMD_DISPATCH(count_nonzero_u32, lanes, n);
}

inline std::size_t popcount_words(const std::uint64_t* words,
                                  std::size_t n) {
  return VLSIP_SIMD_DISPATCH(popcount_words, words, n);
}

inline std::uint64_t max_u64(const std::uint64_t* words, std::size_t n) {
  return VLSIP_SIMD_DISPATCH(max_u64, words, n);
}

#undef VLSIP_SIMD_DISPATCH

}  // namespace vlsip::simd
