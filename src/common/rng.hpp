// Deterministic pseudo-random number generation for workload synthesis.
//
// The simulator must be bit-reproducible across platforms, so we implement
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64 rather than
// relying on implementation-defined std::default_random_engine behaviour.
// Distribution helpers are hand-rolled for the same reason: libstdc++ and
// libc++ produce different streams from std::uniform_int_distribution.
#pragma once

#include <cstdint>
#include <vector>

namespace vlsip {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256-1 period.
class Xoshiro256 {
 public:
  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Geometric distribution: number of failures before first success,
  /// success probability p in (0, 1]. Mean (1-p)/p.
  std::uint64_t geometric(double p);

  /// Fisher–Yates shuffle of a vector (used by workload generators).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace vlsip
