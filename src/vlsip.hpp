// Umbrella header for the vlsip library — the full public surface of
// the Very Large-Scale Integrated Processor reproduction.
//
//   #include "vlsip.hpp"
//
//   vlsip::core::VlsiProcessor chip;
//   auto proc = chip.fuse(4);
//   auto prog = vlsip::lang::compile("input x\noutput y = x * 3\n");
//   auto r = chip.run_program(proc, prog,
//                             {{"x", {vlsip::arch::make_word_i(14)}}},
//                             1, 100000);
//
// Layering (each header is also individually includable):
//   common/    deterministic RNG, stats, tables, events
//   obs/       observability spine: structured trace events, metric
//              registry, snapshots, JSON + chrome-trace exporters
//   arch/      object model, streams, builder, analyses, serialization
//   lang/      the dataflow-language compiler
//   csd/       dynamic channel-segmentation-distribution network
//   topology/  S-topology fabric, regions/rings, baseline topologies
//   noc/       virtual-channel wormhole mesh
//   ap/        the adaptive processor (stack, WSRF, pipeline, executor)
//   scaling/   state machine, fuse/split manager, jobs, supervisor
//   costmodel/ the paper's §4 area/delay/GOPS model
//   snapshot/  versioned deterministic binary checkpoints
//   core/      the whole-chip facade (+ Status and config builders)
//   fault/     seeded fault plans + injector (chaos engineering)
//   runtime/   the multi-chip job-serving farm (threads, admission,
//              batching, latency metrics, fault tolerance,
//              checkpoint/restore, deterministic replay)
//   net/       framed binary wire protocol + thin hub client
//   daemon/    hub and worker daemons (the distributed farm)
//   workload/  kernel library over the language front end + seeded
//              scenario-pack traffic generator and report runner
#pragma once

#include "common/event_queue.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"

#include "obs/farm_metrics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace_sink.hpp"

#include "arch/config_stream.hpp"
#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "arch/object.hpp"
#include "arch/optimizer.hpp"
#include "arch/serialize.hpp"

#include "lang/compiler.hpp"

#include "csd/csd_simulator.hpp"
#include "csd/dynamic_csd.hpp"
#include "csd/global_network.hpp"
#include "csd/handshake.hpp"

#include "topology/baselines.hpp"
#include "topology/region.hpp"
#include "topology/s_topology.hpp"

#include "noc/noc_fabric.hpp"
#include "noc/router.hpp"

#include "ap/adaptive_processor.hpp"
#include "ap/executor.hpp"
#include "ap/memory_block.hpp"
#include "ap/object_space.hpp"
#include "ap/pipeline.hpp"
#include "ap/replacement.hpp"
#include "ap/wsrf.hpp"

#include "scaling/job.hpp"
#include "scaling/job_scheduler.hpp"
#include "scaling/scaling_manager.hpp"
#include "scaling/state_machine.hpp"
#include "scaling/supervisor.hpp"

#include "costmodel/areas.hpp"
#include "costmodel/technology.hpp"
#include "costmodel/vlsi_model.hpp"

#include "snapshot/codec.hpp"
#include "snapshot/incremental.hpp"
#include "snapshot/snapshot.hpp"

#include "core/builder.hpp"
#include "core/status.hpp"
#include "core/vlsi_processor.hpp"

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"

#include "runtime/admission_queue.hpp"
#include "runtime/batcher.hpp"
#include "runtime/chip_farm.hpp"
#include "runtime/farm_config_builder.hpp"
#include "runtime/manifest.hpp"
#include "runtime/replay.hpp"

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

#include "daemon/hub.hpp"
#include "daemon/worker.hpp"

#include "workload/kernels.hpp"
#include "workload/runner.hpp"
#include "workload/scenario.hpp"
