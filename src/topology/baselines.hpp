// Baseline on-chip topologies discussed in the paper's related work (§5):
// the ring (Cell EIB / Sandy Bridge style) and the 2-D mesh (Tile /
// SCC style). The ablation bench compares their latency and bisection
// properties against the S-topology's folded linear array, and verifies
// the paper's remark that "the ring topology can be implemented on the
// S-topology".
#pragma once

#include <cstddef>
#include <cstdint>

namespace vlsip::topology {

/// Analytic ring of `n` nodes, bidirectional.
class RingTopology {
 public:
  explicit RingTopology(std::size_t n);

  std::size_t nodes() const { return n_; }
  /// Shortest hop count between two nodes.
  std::size_t hops(std::size_t a, std::size_t b) const;
  /// Mean shortest-path hops over all ordered pairs (grows ~n/4,
  /// the §5 scalability limit).
  double mean_hops() const;
  std::size_t diameter() const;
  /// Links cut by the worst-case bisection.
  std::size_t bisection_links() const;

 private:
  std::size_t n_;
};

/// Analytic w x h 2-D mesh with dimension-ordered (XY) routing.
class MeshTopology {
 public:
  MeshTopology(std::size_t w, std::size_t h);

  std::size_t nodes() const { return w_ * h_; }
  std::size_t hops(std::size_t a, std::size_t b) const;
  double mean_hops() const;
  std::size_t diameter() const;
  std::size_t bisection_links() const;

 private:
  std::size_t w_;
  std::size_t h_;
};

/// The folded linear array (S-topology stack): node i and node j are
/// |i-j| hops apart along the stack-shift network.
class LinearTopology {
 public:
  explicit LinearTopology(std::size_t n);

  std::size_t nodes() const { return n_; }
  std::size_t hops(std::size_t a, std::size_t b) const;
  double mean_hops() const;
  std::size_t diameter() const;
  std::size_t bisection_links() const;

 private:
  std::size_t n_;
};

}  // namespace vlsip::topology
