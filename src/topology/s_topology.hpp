// The S-topology (paper §3.1, fig. 4): a 2-D fabric of replicated
// clusters onto which the adaptive processor's linear array is folded.
//
// Required properties (paper's list):
//  1. hierarchical/fractal — the fabric is a uniform grid of one cluster
//     pattern, so any sub-rectangle is itself an S-topology;
//  2. minimum number of layout patterns — exactly one cluster is
//     replicated;
//  3. regular chain/unchain switch points — every cluster boundary has a
//     programmable switch (fig. 6 b,c) in a regular pattern.
//
// A *cluster* is the unit of scaling: one minimum-scale adaptive
// processor (16 physical objects + 16 memory objects + system object in
// the cost model). Chaining clusters through the programmable switches
// extends the linear stack across cluster boundaries; unchaining splits
// it. The default switch state is UNCHAINED (§3.2), so a fresh chip is
// all minimum-scale processors.
//
// An optional second die layer models the 3-D stacked variant of
// fig. 6(d): vertically adjacent clusters are switch neighbours too.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::topology {

using ClusterId = std::uint32_t;
inline constexpr ClusterId kNoCluster = 0xFFFFFFFFu;

/// Region handle; regions themselves are managed in region.hpp.
using RegionId = std::uint32_t;
inline constexpr RegionId kNoRegion = 0xFFFFFFFFu;

struct Coord {
  int x = 0;
  int y = 0;
  int layer = 0;  // 0 unless die-stacked

  bool operator==(const Coord&) const = default;
  auto operator<=>(const Coord&) const = default;
};

/// Manhattan distance in the cluster grid; a vertical (die-to-die) hop
/// counts as one.
int manhattan(const Coord& a, const Coord& b);

/// What a cluster contains (the cost model consumes these counts).
struct ClusterSpec {
  int physical_objects = 16;
  int memory_objects = 16;
  int system_objects = 1;

  /// Linear-array capacity contributed by one cluster (compute positions;
  /// memory objects sit beside the stack, §2.6.2).
  int stack_capacity() const { return physical_objects; }
};

/// State of the programmable switch pair on one inter-cluster boundary.
struct LinkState {
  /// Bidirectional chain network (fig. 6 c): true = clusters fused.
  bool chained = false;
  /// Unidirectional stack-shift network (fig. 6 b): which endpoint the
  /// shift flows *from* (set when the link is chained into a region).
  std::optional<ClusterId> shift_from;
  /// Wormhole-configuration reservation flag (§3.3): set while a scaling
  /// configuration worm traverses the switch, preventing allocation
  /// conflicts between concurrent scalings.
  RegionId reserved_by = kNoRegion;
};

/// The S-topology fabric: geometry, neighbourhood and switch state.
/// Region/processor semantics are layered on top (region.hpp).
class STopologyFabric {
 public:
  STopologyFabric(int width, int height, ClusterSpec spec, int layers = 1);

  int width() const { return width_; }
  int height() const { return height_; }
  int layers() const { return layers_; }
  const ClusterSpec& cluster_spec() const { return spec_; }
  std::size_t cluster_count() const {
    return static_cast<std::size_t>(width_) * height_ * layers_;
  }

  ClusterId at(const Coord& c) const;
  Coord coord(ClusterId id) const;
  bool valid(const Coord& c) const;

  /// Grid/stack neighbourhood (4-neighbour within a layer, plus the
  /// vertically adjacent cluster when die-stacked).
  std::vector<ClusterId> neighbors(ClusterId id) const;
  bool are_neighbors(ClusterId a, ClusterId b) const;

  /// The canonical serpentine fold (fig. 4 c): boustrophedon rows within
  /// a layer, layers concatenated. Consecutive indices are always grid
  /// neighbours — the property that lets one linear stack cover the chip.
  std::size_t serpentine_index(ClusterId id) const;
  ClusterId serpentine_at(std::size_t index) const;

  // --- programmable switches (fig. 6 b,c) -------------------------------

  /// Programs the chain switch between neighbouring clusters `from` and
  /// `to`: fuses them and orients the stack-shift network from->to.
  void chain(ClusterId from, ClusterId to);
  void unchain(ClusterId a, ClusterId b);
  bool chained(ClusterId a, ClusterId b) const;

  /// Stack-shift orientation of a chained link (nullopt if unchained).
  std::optional<ClusterId> shift_source(ClusterId a, ClusterId b) const;

  /// Wormhole reservation flags (§3.3).
  bool reserve(ClusterId a, ClusterId b, RegionId owner);
  void clear_reservation(ClusterId a, ClusterId b);
  RegionId reservation(ClusterId a, ClusterId b) const;

  /// Number of chained links (diagnostics).
  std::size_t chained_links() const;

  /// Resets every switch to the default (unchained, unreserved) state.
  void reset_switches();

  /// Checkpoint codec: switch state verbatim (chain, shift orientation,
  /// wormhole reservations). Geometry is fingerprint-checked.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

  /// Monotonic mutation generation: bumped by every state-changing
  /// method (chain/unchain/reserve/clear_reservation/reset_switches/
  /// restore). An unchanged generation proves the serialised bytes are
  /// unchanged too, which lets the incremental checkpoint path splice
  /// this layer from the previous snapshot instead of re-serialising.
  std::uint64_t dirty_gen() const { return dirty_gen_; }

  std::string render() const;

 private:
  std::uint64_t link_key(ClusterId a, ClusterId b) const;
  LinkState& link(ClusterId a, ClusterId b);
  const LinkState* find_link(ClusterId a, ClusterId b) const;
  void mark_dirty() { ++dirty_gen_; }

  int width_;
  int height_;
  int layers_;
  ClusterSpec spec_;
  std::map<std::uint64_t, LinkState> links_;
  std::uint64_t dirty_gen_ = 1;
};

}  // namespace vlsip::topology
