#include "topology/region.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::topology {

bool is_simple_neighbor_path(const STopologyFabric& fabric,
                             const std::vector<ClusterId>& path) {
  if (path.empty()) return false;
  std::unordered_set<ClusterId> seen;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] >= fabric.cluster_count()) return false;
    if (!seen.insert(path[i]).second) return false;
    if (i > 0 && !fabric.are_neighbors(path[i - 1], path[i])) return false;
  }
  return true;
}

std::vector<ClusterId> rectangle_ring(const STopologyFabric& fabric, int x0,
                                      int y0, int w, int h) {
  if (w < 2 || h < 2) return {};
  if (x0 < 0 || y0 < 0 || x0 + w > fabric.width() ||
      y0 + h > fabric.height()) {
    return {};
  }
  std::vector<ClusterId> ring;
  for (int x = x0; x < x0 + w; ++x) ring.push_back(fabric.at({x, y0, 0}));
  for (int y = y0 + 1; y < y0 + h; ++y) {
    ring.push_back(fabric.at({x0 + w - 1, y, 0}));
  }
  for (int x = x0 + w - 2; x >= x0; --x) {
    ring.push_back(fabric.at({x, y0 + h - 1, 0}));
  }
  for (int y = y0 + h - 2; y > y0; --y) ring.push_back(fabric.at({x0, y, 0}));
  return ring;
}

RegionManager::RegionManager(STopologyFabric& fabric)
    : fabric_(fabric), cluster_owner_(fabric.cluster_count(), kNoRegion) {}

bool RegionManager::can_form(const std::vector<ClusterId>& path) const {
  if (!is_simple_neighbor_path(fabric_, path)) return false;
  return std::all_of(path.begin(), path.end(), [&](ClusterId c) {
    return cluster_owner_[c] == kNoRegion;
  });
}

RegionId RegionManager::form(const std::vector<ClusterId>& path, bool ring) {
  VLSIP_REQUIRE(can_form(path), "path is not a free simple neighbour chain");
  if (ring) {
    VLSIP_REQUIRE(path.size() >= 3, "a ring needs at least three clusters");
    VLSIP_REQUIRE(fabric_.are_neighbors(path.back(), path.front()),
                  "ring ends must be neighbours");
  }
  const auto id = static_cast<RegionId>(regions_.size());
  Region r;
  r.id = id;
  r.path = path;
  r.ring = ring;
  for (std::size_t i = 1; i < path.size(); ++i) {
    fabric_.chain(path[i - 1], path[i]);
  }
  if (ring) fabric_.chain(path.back(), path.front());
  for (ClusterId c : path) cluster_owner_[c] = id;
  regions_.push_back(std::move(r));
  return id;
}

void RegionManager::check_alive(RegionId id) const {
  VLSIP_REQUIRE(id < regions_.size() && regions_[id].id != kNoRegion,
                "region is not alive");
}

void RegionManager::dissolve(RegionId id) {
  check_alive(id);
  Region& r = regions_[id];
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    fabric_.unchain(r.path[i - 1], r.path[i]);
  }
  if (r.ring && r.path.size() >= 2) {
    fabric_.unchain(r.path.back(), r.path.front());
  }
  for (ClusterId c : r.path) cluster_owner_[c] = kNoRegion;
  r.id = kNoRegion;
  r.path.clear();
}

std::vector<ClusterId> RegionManager::shrink(RegionId id, std::size_t keep) {
  check_alive(id);
  Region& r = regions_[id];
  VLSIP_REQUIRE(keep + 1 <= r.path.size(), "keep index out of range");
  if (r.ring) {
    fabric_.unchain(r.path.back(), r.path.front());
    r.ring = false;
  }
  std::vector<ClusterId> freed(r.path.begin() + keep + 1, r.path.end());
  for (std::size_t i = keep + 1; i < r.path.size(); ++i) {
    fabric_.unchain(r.path[i - 1], r.path[i]);
    cluster_owner_[r.path[i]] = kNoRegion;
  }
  r.path.resize(keep + 1);
  return freed;
}

void RegionManager::extend(RegionId id, ClusterId next) {
  check_alive(id);
  Region& r = regions_[id];
  VLSIP_REQUIRE(!r.ring, "cannot extend a closed ring");
  VLSIP_REQUIRE(next < fabric_.cluster_count(), "cluster id out of range");
  VLSIP_REQUIRE(cluster_owner_[next] == kNoRegion, "cluster is not free");
  VLSIP_REQUIRE(fabric_.are_neighbors(r.path.back(), next),
                "extension must neighbour the region tail");
  fabric_.chain(r.path.back(), next);
  r.path.push_back(next);
  cluster_owner_[next] = id;
}

const Region& RegionManager::region(RegionId id) const {
  check_alive(id);
  return regions_[id];
}

bool RegionManager::alive(RegionId id) const {
  return id < regions_.size() && regions_[id].id != kNoRegion;
}

RegionId RegionManager::owner(ClusterId cluster) const {
  VLSIP_REQUIRE(cluster < cluster_owner_.size(), "cluster id out of range");
  return cluster_owner_[cluster];
}

std::size_t RegionManager::free_clusters() const {
  return static_cast<std::size_t>(
      std::count(cluster_owner_.begin(), cluster_owner_.end(), kNoRegion));
}

std::vector<RegionId> RegionManager::live_regions() const {
  std::vector<RegionId> out;
  for (const auto& r : regions_) {
    if (r.id != kNoRegion) out.push_back(r.id);
  }
  return out;
}

int RegionManager::stack_capacity(RegionId id) const {
  check_alive(id);
  return static_cast<int>(regions_[id].path.size()) *
         fabric_.cluster_spec().stack_capacity();
}

std::vector<ClusterId> RegionManager::find_serpentine_run(
    std::size_t n) const {
  VLSIP_REQUIRE(n >= 1, "run length must be positive");
  const std::size_t total = fabric_.cluster_count();
  std::vector<ClusterId> run;
  for (std::size_t i = 0; i < total; ++i) {
    const ClusterId c = fabric_.serpentine_at(i);
    if (cluster_owner_[c] == kNoRegion) {
      run.push_back(c);
      if (run.size() == n) return run;
    } else {
      run.clear();
    }
  }
  return {};
}

void RegionManager::save(snapshot::Writer& w) const {
  w.section("topology.regions");
  w.u64(regions_.size());
  for (const auto& region : regions_) {
    w.u32(region.id);
    w.vec_u32(region.path);
    w.b(region.ring);
  }
  w.vec_u32(cluster_owner_);
}

void RegionManager::restore(snapshot::Reader& r) {
  r.section("topology.regions");
  regions_.clear();
  const std::uint64_t n = r.count(13);
  regions_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Region region;
    region.id = r.u32();
    region.path = r.vec_u32();
    region.ring = r.b();
    regions_.push_back(std::move(region));
  }
  cluster_owner_ = r.vec_u32();
  VLSIP_REQUIRE(cluster_owner_.size() == fabric_.cluster_count(),
                "snapshot region ownership mismatch");
}

}  // namespace vlsip::topology
