#include "topology/baselines.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/require.hpp"

namespace vlsip::topology {

RingTopology::RingTopology(std::size_t n) : n_(n) {
  VLSIP_REQUIRE(n >= 3, "a ring needs at least three nodes");
}

std::size_t RingTopology::hops(std::size_t a, std::size_t b) const {
  VLSIP_REQUIRE(a < n_ && b < n_, "node out of range");
  const std::size_t d = a > b ? a - b : b - a;
  return std::min(d, n_ - d);
}

double RingTopology::mean_hops() const {
  // Closed form: mean over ordered distinct pairs.
  // For even n: sum of min distances from one node = n^2/4; for odd:
  // (n^2-1)/4. Mean over (n-1) other nodes.
  const double n = static_cast<double>(n_);
  const double sum = (n_ % 2 == 0) ? n * n / 4.0 : (n * n - 1.0) / 4.0;
  return sum / (n - 1.0);
}

std::size_t RingTopology::diameter() const { return n_ / 2; }

std::size_t RingTopology::bisection_links() const { return 2; }

MeshTopology::MeshTopology(std::size_t w, std::size_t h) : w_(w), h_(h) {
  VLSIP_REQUIRE(w >= 1 && h >= 1, "mesh must be non-empty");
}

std::size_t MeshTopology::hops(std::size_t a, std::size_t b) const {
  VLSIP_REQUIRE(a < nodes() && b < nodes(), "node out of range");
  const auto ax = static_cast<long>(a % w_);
  const auto ay = static_cast<long>(a / w_);
  const auto bx = static_cast<long>(b % w_);
  const auto by = static_cast<long>(b / w_);
  return static_cast<std::size_t>(std::labs(ax - bx) + std::labs(ay - by));
}

double MeshTopology::mean_hops() const {
  // Mean Manhattan distance decomposes per axis. For a line of k nodes
  // the sum of |i-j| over ordered pairs is k(k^2-1)/3.
  auto axis_sum = [](double k) { return k * (k * k - 1.0) / 3.0; };
  const double w = static_cast<double>(w_);
  const double h = static_cast<double>(h_);
  const double n = w * h;
  const double total = h * h * axis_sum(w) + w * w * axis_sum(h);
  return total / (n * (n - 1.0));
}

std::size_t MeshTopology::diameter() const { return (w_ - 1) + (h_ - 1); }

std::size_t MeshTopology::bisection_links() const {
  // Cut across the longer axis.
  return std::min(w_, h_);
}

LinearTopology::LinearTopology(std::size_t n) : n_(n) {
  VLSIP_REQUIRE(n >= 2, "a line needs at least two nodes");
}

std::size_t LinearTopology::hops(std::size_t a, std::size_t b) const {
  VLSIP_REQUIRE(a < n_ && b < n_, "node out of range");
  return a > b ? a - b : b - a;
}

double LinearTopology::mean_hops() const {
  const double n = static_cast<double>(n_);
  return (n * (n * n - 1.0) / 3.0) / (n * (n - 1.0));
}

std::size_t LinearTopology::diameter() const { return n_ - 1; }

std::size_t LinearTopology::bisection_links() const { return 1; }

}  // namespace vlsip::topology
