// Regions: connected cluster chains on the S-topology (paper §3.1, figs.
// 4–5).
//
// A region is an ordered path of pairwise-neighbouring clusters whose
// chain switches have been programmed, forming one linear stack — i.e.
// one (scaled) adaptive processor. "The S-topology network supports the
// ability to unchain (split) the array into any arbitrary shape that may
// be formed by connecting the clusters"; closing the path's ends yields a
// ring (fig. 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/s_topology.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::topology {

struct Region {
  RegionId id = kNoRegion;
  /// Clusters in linear-stack order (top of stack = path.front()).
  std::vector<ClusterId> path;
  /// True if the last cluster is also chained back to the first.
  bool ring = false;

  std::size_t cluster_count() const { return path.size(); }
};

/// Manages region allocation on a fabric: checks path validity, programs
/// and clears switches, tracks which cluster belongs to which region.
class RegionManager {
 public:
  explicit RegionManager(STopologyFabric& fabric);

  /// True if `path` can become a region: non-empty, no duplicates,
  /// consecutive clusters are neighbours, and every cluster is free.
  bool can_form(const std::vector<ClusterId>& path) const;

  /// Forms a region along `path`, programming the chain switches in
  /// order (top of stack first). Throws PreconditionError if !can_form.
  RegionId form(const std::vector<ClusterId>& path, bool ring = false);

  /// Releases the region: unchains its switches and frees its clusters.
  void dissolve(RegionId id);

  /// Splits the region after position `keep` (0-based cluster index):
  /// clusters [0..keep] stay in the region (switch between keep and
  /// keep+1 is unchained), clusters [keep+1..] are freed. Rings are
  /// opened first. Returns the freed clusters in order.
  std::vector<ClusterId> shrink(RegionId id, std::size_t keep);

  /// Extends the region by chaining `next` (must neighbour the current
  /// tail and be free). Rings cannot be extended.
  void extend(RegionId id, ClusterId next);

  const Region& region(RegionId id) const;
  bool alive(RegionId id) const;

  /// Region owning `cluster`, or kNoRegion.
  RegionId owner(ClusterId cluster) const;

  std::size_t free_clusters() const;
  std::vector<RegionId> live_regions() const;

  /// Total stack capacity (compute positions) of a region.
  int stack_capacity(RegionId id) const;

  /// Serpentine-greedy allocation: takes the first `n` free clusters in
  /// serpentine order that form a contiguous chain; returns an empty
  /// vector if no such run exists. This is the "in-order configuration
  /// [that] may perform a spatially local placement" of §3.3.
  std::vector<ClusterId> find_serpentine_run(std::size_t n) const;

  /// Checkpoint codec: region table and ownership verbatim. Switches
  /// are NOT re-programmed on restore — the fabric's own codec carries
  /// their state, so the two must be restored together.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  void check_alive(RegionId id) const;

  STopologyFabric& fabric_;
  std::vector<Region> regions_;
  std::vector<RegionId> cluster_owner_;
};

/// Validates that `path` is a simple path of pairwise neighbours on the
/// fabric (stand-alone helper shared with tests).
bool is_simple_neighbor_path(const STopologyFabric& fabric,
                             const std::vector<ClusterId>& path);

/// Enumerates the rectangular ring (cycle) of clusters with the given
/// top-left corner and size; returns empty if it does not fit or is
/// degenerate (needs w >= 2 and h >= 2). Layer 0.
std::vector<ClusterId> rectangle_ring(const STopologyFabric& fabric, int x0,
                                      int y0, int w, int h);

}  // namespace vlsip::topology
