#include "topology/s_topology.hpp"

#include <cmath>
#include <sstream>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::topology {

int manhattan(const Coord& a, const Coord& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) +
         std::abs(a.layer - b.layer);
}

STopologyFabric::STopologyFabric(int width, int height, ClusterSpec spec,
                                 int layers)
    : width_(width), height_(height), layers_(layers), spec_(spec) {
  VLSIP_REQUIRE(width >= 1 && height >= 1, "fabric must be non-empty");
  VLSIP_REQUIRE(layers >= 1 && layers <= 2,
                "at most two dies (fig. 6d is chip-on-chip)");
  VLSIP_REQUIRE(spec.physical_objects >= 1, "cluster needs compute objects");
}

bool STopologyFabric::valid(const Coord& c) const {
  return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_ &&
         c.layer >= 0 && c.layer < layers_;
}

ClusterId STopologyFabric::at(const Coord& c) const {
  VLSIP_REQUIRE(valid(c), "coordinate outside the fabric");
  return static_cast<ClusterId>((c.layer * height_ + c.y) * width_ + c.x);
}

Coord STopologyFabric::coord(ClusterId id) const {
  VLSIP_REQUIRE(id < cluster_count(), "cluster id out of range");
  Coord c;
  c.x = static_cast<int>(id) % width_;
  c.y = (static_cast<int>(id) / width_) % height_;
  c.layer = static_cast<int>(id) / (width_ * height_);
  return c;
}

std::vector<ClusterId> STopologyFabric::neighbors(ClusterId id) const {
  const Coord c = coord(id);
  std::vector<ClusterId> out;
  const Coord candidates[] = {
      {c.x - 1, c.y, c.layer}, {c.x + 1, c.y, c.layer},
      {c.x, c.y - 1, c.layer}, {c.x, c.y + 1, c.layer},
      {c.x, c.y, c.layer - 1}, {c.x, c.y, c.layer + 1},
  };
  for (const auto& cand : candidates) {
    if (valid(cand)) out.push_back(at(cand));
  }
  return out;
}

bool STopologyFabric::are_neighbors(ClusterId a, ClusterId b) const {
  if (a == b) return false;
  return manhattan(coord(a), coord(b)) == 1;
}

std::size_t STopologyFabric::serpentine_index(ClusterId id) const {
  const Coord c = coord(id);
  const std::size_t per_layer =
      static_cast<std::size_t>(width_) * height_;
  // Boustrophedon within a layer. An odd layer walks the layer-0 pattern
  // *backwards*, so the die crossing (fig. 6 d) lands exactly above the
  // previous layer's endpoint — a single vertical hop.
  const bool reversed_row = (c.y % 2) == 1;
  std::size_t in_layer = static_cast<std::size_t>(c.y) * width_ +
                         (reversed_row ? width_ - 1 - c.x : c.x);
  if (c.layer % 2 == 1) in_layer = per_layer - 1 - in_layer;
  return static_cast<std::size_t>(c.layer) * per_layer + in_layer;
}

ClusterId STopologyFabric::serpentine_at(std::size_t index) const {
  VLSIP_REQUIRE(index < cluster_count(), "serpentine index out of range");
  const std::size_t per_layer =
      static_cast<std::size_t>(width_) * height_;
  const int layer = static_cast<int>(index / per_layer);
  std::size_t in_layer = index % per_layer;
  if (layer % 2 == 1) in_layer = per_layer - 1 - in_layer;
  const int y = static_cast<int>(in_layer) / width_;
  int x = static_cast<int>(in_layer) % width_;
  if ((y % 2) == 1) x = width_ - 1 - x;
  return at(Coord{x, y, layer});
}

std::uint64_t STopologyFabric::link_key(ClusterId a, ClusterId b) const {
  VLSIP_REQUIRE(are_neighbors(a, b),
                "switches exist only between neighbouring clusters");
  const ClusterId lo = a < b ? a : b;
  const ClusterId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

LinkState& STopologyFabric::link(ClusterId a, ClusterId b) {
  return links_[link_key(a, b)];
}

const LinkState* STopologyFabric::find_link(ClusterId a, ClusterId b) const {
  const auto it = links_.find(link_key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

void STopologyFabric::chain(ClusterId from, ClusterId to) {
  mark_dirty();
  LinkState& l = link(from, to);
  VLSIP_REQUIRE(!l.chained, "link already chained");
  l.chained = true;
  l.shift_from = from;
}

void STopologyFabric::unchain(ClusterId a, ClusterId b) {
  mark_dirty();
  LinkState& l = link(a, b);
  VLSIP_REQUIRE(l.chained, "link not chained");
  l.chained = false;
  l.shift_from.reset();
}

bool STopologyFabric::chained(ClusterId a, ClusterId b) const {
  const LinkState* l = find_link(a, b);
  return l != nullptr && l->chained;
}

std::optional<ClusterId> STopologyFabric::shift_source(ClusterId a,
                                                       ClusterId b) const {
  const LinkState* l = find_link(a, b);
  if (l == nullptr || !l->chained) return std::nullopt;
  return l->shift_from;
}

bool STopologyFabric::reserve(ClusterId a, ClusterId b, RegionId owner) {
  // Even a refused reservation may have materialised the link entry,
  // which changes the serialised link table.
  mark_dirty();
  LinkState& l = link(a, b);
  if (l.reserved_by != kNoRegion && l.reserved_by != owner) return false;
  l.reserved_by = owner;
  return true;
}

void STopologyFabric::clear_reservation(ClusterId a, ClusterId b) {
  mark_dirty();
  LinkState& l = link(a, b);
  l.reserved_by = kNoRegion;
}

RegionId STopologyFabric::reservation(ClusterId a, ClusterId b) const {
  const LinkState* l = find_link(a, b);
  return l == nullptr ? kNoRegion : l->reserved_by;
}

std::size_t STopologyFabric::chained_links() const {
  std::size_t n = 0;
  for (const auto& [key, l] : links_) {
    (void)key;
    if (l.chained) ++n;
  }
  return n;
}

void STopologyFabric::reset_switches() {
  mark_dirty();
  links_.clear();
}

std::string STopologyFabric::render() const {
  // Layer-0 map: '+' cluster, '-'/'|' chained links.
  std::ostringstream out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out << '+';
      if (x + 1 < width_) {
        out << (chained(at({x, y, 0}), at({x + 1, y, 0})) ? '-' : ' ');
      }
    }
    out << '\n';
    if (y + 1 < height_) {
      for (int x = 0; x < width_; ++x) {
        out << (chained(at({x, y, 0}), at({x, y + 1, 0})) ? '|' : ' ');
        if (x + 1 < width_) out << ' ';
      }
      out << '\n';
    }
  }
  return out.str();
}

void STopologyFabric::save(snapshot::Writer& w) const {
  w.section("topology.fabric");
  w.i32(width_);
  w.i32(height_);
  w.i32(layers_);
  w.u64(links_.size());
  for (const auto& [key, state] : links_) {
    w.u64(key);
    w.b(state.chained);
    w.b(state.shift_from.has_value());
    w.u32(state.shift_from.value_or(kNoCluster));
    w.u32(state.reserved_by);
  }
}

void STopologyFabric::restore(snapshot::Reader& r) {
  mark_dirty();
  r.section("topology.fabric");
  const int width = r.i32();
  const int height = r.i32();
  const int layers = r.i32();
  VLSIP_REQUIRE(width == width_ && height == height_ && layers == layers_,
                "snapshot fabric geometry mismatch");
  links_.clear();
  const std::uint64_t n = r.count(18);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.u64();
    LinkState state;
    state.chained = r.b();
    const bool has_shift = r.b();
    const ClusterId shift_from = r.u32();
    if (has_shift) state.shift_from = shift_from;
    state.reserved_by = r.u32();
    links_.emplace(key, state);
  }
}

}  // namespace vlsip::topology
