// ChipConfigBuilder — the one construction surface for a chip.
//
// Configuration knobs used to be scattered over five nested structs
// (ChipConfig -> ClusterSpec / RouterConfig / ScalingConfig ->
// ApConfig -> ExecConfig ...): callers had to know, for example, that
// the event-driven toggle lives at
// `cfg.scaling.ap_template.exec.event_driven`. The builder names every
// commonly-tuned knob once, routes it to the right nested field, and
// validates the result in build(). Aggregate-initialising the structs
// directly still works — it is the legacy path the builder wraps, kept
// so existing examples and tests migrate incrementally.
//
//   auto cfg = core::ChipConfigBuilder()
//                  .grid(4, 4)
//                  .cluster(8, 8)
//                  .event_driven(true)
//                  .trace(false)
//                  .build();
//   core::VlsiProcessor chip(cfg);
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.hpp"
#include "core/vlsi_processor.hpp"

namespace vlsip::core {

class ChipConfigBuilder {
 public:
  /// Cluster grid dimensions (width x height per layer).
  ChipConfigBuilder& grid(int width, int height) {
    config_.width = width;
    config_.height = height;
    return *this;
  }

  /// 2 = die-stacked (fig. 6 d).
  ChipConfigBuilder& layers(int n) {
    config_.layers = n;
    return *this;
  }

  /// Objects per cluster: compute stack positions and memory blocks
  /// beside them (§2.6.2's provisioning).
  ChipConfigBuilder& cluster(int physical_objects, int memory_objects,
                             int system_objects = 1) {
    config_.cluster.physical_objects = physical_objects;
    config_.cluster.memory_objects = memory_objects;
    config_.cluster.system_objects = system_objects;
    return *this;
  }

  /// NoC router provisioning.
  ChipConfigBuilder& router(int queue_depth, int virtual_channels = 1) {
    config_.router.queue_depth = queue_depth;
    config_.router.virtual_channels = virtual_channels;
    return *this;
  }

  /// Cluster the configurator injects scaling worms from.
  ChipConfigBuilder& configurator(int x, int y) {
    config_.scaling.configurator_x = x;
    config_.scaling.configurator_y = y;
    return *this;
  }

  ChipConfigBuilder& max_config_cycles(std::uint64_t cycles) {
    config_.scaling.max_config_cycles = cycles;
    return *this;
  }

  // --- AP template knobs (applied to every fused processor) -------------

  /// Event-driven cycle engine vs the dense reference scan
  /// (bit-identical; event-driven is the fast path).
  ChipConfigBuilder& event_driven(bool on) {
    config_.scaling.ap_template.exec.event_driven = on;
    return *this;
  }

  /// Virtual-hardware object faulting, and how many faults may be in
  /// service concurrently (Table 3's CFB count).
  ChipConfigBuilder& allow_faults(bool on, int concurrency = 3) {
    config_.scaling.ap_template.exec.allow_faults = on;
    config_.scaling.ap_template.exec.fault_concurrency = concurrency;
    return *this;
  }

  /// Per-chain token queue depth.
  ChipConfigBuilder& edge_capacity(int depth) {
    config_.scaling.ap_template.exec.edge_capacity = depth;
    return *this;
  }

  /// Cycles without progress before a run is declared deadlocked.
  ChipConfigBuilder& deadlock_window(std::uint64_t cycles) {
    config_.scaling.ap_template.exec.deadlock_window = cycles;
    return *this;
  }

  ChipConfigBuilder& wsrf_capacity(int entries) {
    config_.scaling.ap_template.wsrf_capacity = entries;
    return *this;
  }

  ChipConfigBuilder& library_load_latency(int cycles) {
    config_.scaling.ap_template.library_load_latency = cycles;
    return *this;
  }

  /// Structured tracing for the chip and every AP fused on it.
  ChipConfigBuilder& trace(bool on) {
    config_.enable_trace = on;
    config_.scaling.ap_template.enable_trace = on;
    return *this;
  }

  /// Live energy accounting priced at an ITRS node (docs/ENERGY.md).
  ChipConfigBuilder& energy(bool on, int node_year = 2012) {
    config_.energy.enabled = on;
    config_.energy.node_year = node_year;
    return *this;
  }

  /// DVS operating points (nominal first) and the starting ladder
  /// index; implies nothing unless energy accounting is on.
  ChipConfigBuilder& dvs_ladder(std::vector<cost::DvsPoint> ladder,
                                std::size_t initial_level = 0) {
    config_.energy.ladder = std::move(ladder);
    config_.energy.initial_level = initial_level;
    return *this;
  }

  /// Validates and returns the config; throws PreconditionError on an
  /// impossible shape (the same failure the VlsiProcessor constructor
  /// would raise, but named at the knob that caused it).
  ChipConfig build() const {
    const Status s = validate();
    VLSIP_REQUIRE(s.ok(), s.to_string());
    return config_;
  }

  /// Non-throwing build() for callers on the Status surface.
  StatusOr<ChipConfig> try_build() const {
    const Status s = validate();
    if (!s.ok()) return s;
    return config_;
  }

  /// The config as accumulated so far, unvalidated — for callers that
  /// want to tweak a field the builder does not name.
  ChipConfig& raw() { return config_; }

 private:
  Status validate() const {
    if (config_.width < 1 || config_.height < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "chip grid must be at least 1x1");
    }
    if (config_.layers < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "chip needs at least one layer");
    }
    if (config_.cluster.physical_objects < 1 ||
        config_.cluster.memory_objects < 1) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster needs at least one physical and one memory "
                    "object");
    }
    if (config_.router.queue_depth < 1 ||
        config_.router.queue_depth > 0xFFFF) {
      return Status(StatusCode::kInvalidArgument,
                    "router queue depth must be in [1, 65535]");
    }
    if (config_.router.virtual_channels < 1 ||
        config_.router.virtual_channels > noc::kMaxVcs) {
      return Status(StatusCode::kInvalidArgument,
                    "router virtual channels must be in [1, " +
                        std::to_string(noc::kMaxVcs) + "]");
    }
    if (config_.scaling.configurator_x < 0 ||
        config_.scaling.configurator_x >= config_.width ||
        config_.scaling.configurator_y < 0 ||
        config_.scaling.configurator_y >= config_.height) {
      return Status(StatusCode::kInvalidArgument,
                    "configurator cluster is outside the grid");
    }
    return Status::Ok();
  }

  ChipConfig config_;
};

}  // namespace vlsip::core
