// The VLSI processor: the whole-chip facade (the paper's headline
// system). One object owns the S-topology fabric, the router network,
// and the scaling manager, and exposes the dynamic-CMP workflow:
//
//   VlsiProcessor chip;                       // 8x8 clusters, all released
//   auto p = chip.fuse(4);                    // fuse 4 clusters -> one AP
//   chip.activate(p);
//   auto r = chip.run_program(p, program, {{"x", {...}}}, 1, 100000);
//   chip.release(p);                          // clusters return to the pool
//
// Fusing allocates clusters via wormhole-routed switch programming;
// the fused region is one adaptive processor whose capacity C is the sum
// of its clusters' stacks. The cost model (costmodel/) prices the same
// chip in mm² and GOPS.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ap/adaptive_processor.hpp"
#include "arch/datapath.hpp"
#include "common/trace.hpp"
#include "core/status.hpp"
#include "costmodel/energy.hpp"
#include "costmodel/vlsi_model.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/scaling_manager.hpp"
#include "snapshot/snapshot.hpp"
#include "topology/region.hpp"
#include "topology/s_topology.hpp"

namespace vlsip::core {

/// A flat snapshot plus the side-channel the incremental checkpoint
/// encoder needs: the recorded section index (diff re-anchor points),
/// the byte offsets where each serialising layer's run of sections
/// begins, and the layers' dirty generations at save time. Produced by
/// VlsiProcessor::save_profiled; consumed as the base of the next
/// incremental save and by snapshot::encode_delta.
struct SaveProfile {
  snapshot::Snapshot flat;
  snapshot::SectionIndex index;
  /// Byte offsets where the fabric / NoC / scaling-manager runs begin
  /// (the header run is [0, layer_marks[0]); the manager run ends at
  /// flat.size()).
  std::array<std::size_t, 3> layer_marks{};
  /// dirty_gen() of fabric / NoC / scaling manager at save time.
  std::array<std::uint64_t, 3> layer_gens{};

  bool valid() const { return !flat.empty(); }
};

struct ChipConfig {
  int width = 8;
  int height = 8;
  int layers = 1;  // 2 = die-stacked (fig. 6 d)
  topology::ClusterSpec cluster;
  noc::RouterConfig router;
  scaling::ScalingConfig scaling;
  bool enable_trace = false;
  /// Live energy/DVS accounting (costmodel/energy.hpp). Disabled by
  /// default: no model is constructed, no "core.energy" snapshot
  /// section is written, and export_obs emits no energy keys.
  cost::EnergySpec energy;
};

/// Outcome of configuring and executing one program on one processor.
struct RunResult {
  ap::ConfigStats config;
  ap::ExecStats exec;
  /// Output tokens by port name (raw 64-bit words).
  std::map<std::string, std::vector<arch::Word>> outputs;
};

class VlsiProcessor {
 public:
  explicit VlsiProcessor(ChipConfig config = {});

  // --- scaling workflow -------------------------------------------------

  /// Fuses `clusters` free clusters into one adaptive processor
  /// (serpentine-local placement). Returns scaling::kNoProc on failure.
  scaling::ProcId fuse(std::size_t clusters);

  /// Fuses an explicit path (arbitrary shapes / rings, figs. 4–5).
  scaling::ProcId fuse_path(const std::vector<topology::ClusterId>& path,
                            bool ring = false);

  /// Splits a processor, keeping `keep_clusters` (must be inactive).
  void split(scaling::ProcId id, std::size_t keep_clusters);

  // --- non-throwing facade (status.hpp) -----------------------------------
  //
  // The try_* family reports expected failures (no space, bad id,
  // illegal state) as Status instead of exceptions — the surface tools
  // and services program against. The throwing methods above remain for
  // code that treats failure as a bug.

  /// fuse() with the kNoProc sentinel lifted into a Status.
  StatusOr<scaling::ProcId> try_fuse(std::size_t clusters);
  StatusOr<scaling::ProcId> try_fuse_path(
      const std::vector<topology::ClusterId>& path, bool ring = false);
  Status try_split(scaling::ProcId id, std::size_t keep_clusters);

  /// run_program() with configuration/precondition errors surfaced as
  /// Status (kInvalidArgument) instead of PreconditionError.
  StatusOr<RunResult> try_run_program(
      scaling::ProcId id, const arch::Program& program,
      const std::map<std::string, std::vector<arch::Word>>& inputs,
      std::size_t expected_per_output, std::uint64_t max_cycles);

  void activate(scaling::ProcId id) { manager_.activate(id); }
  void deactivate(scaling::ProcId id) { manager_.deactivate(id); }
  void release(scaling::ProcId id) { manager_.release(id); }

  // --- execution ---------------------------------------------------------

  /// Configures `program` on processor `id` (activating it if inactive),
  /// feeds the given input streams, and runs until every output collected
  /// `expected_per_output` tokens or `max_cycles` elapse.
  RunResult run_program(
      scaling::ProcId id, const arch::Program& program,
      const std::map<std::string, std::vector<arch::Word>>& inputs,
      std::size_t expected_per_output, std::uint64_t max_cycles);

  // --- introspection ------------------------------------------------------

  topology::STopologyFabric& fabric() { return fabric_; }
  noc::NocFabric& noc() { return noc_; }
  scaling::ScalingManager& manager() { return manager_; }
  Trace& trace() { return trace_; }

  /// Publishes the whole chip into `registry`: NoC fabric counters
  /// ("noc."), scaling/state-machine/AP-layer counters ("scaling.",
  /// "ap.") and chip-level cluster gauges ("chip.") — one call wires
  /// every layer below the runtime into the observability spine.
  void export_obs(obs::MetricRegistry& registry) const;

  std::size_t total_clusters() const { return fabric_.cluster_count(); }
  std::size_t free_clusters() const { return manager_.free_clusters(); }
  std::size_t defective_clusters() const {
    return manager_.defective_clusters();
  }

  /// Healthy clusters still in service (total minus quarantined).
  std::size_t healthy_clusters() const {
    return total_clusters() - defective_clusters();
  }

  /// Fault-recovery entry point: quarantines the cluster, releases any
  /// processor it belonged to, and re-fuses a same-size replacement
  /// from spares (compacting on fragmentation). See
  /// scaling::ScalingManager::refuse_around.
  scaling::ScalingManager::FaultRecovery heal(topology::ClusterId cluster) {
    return manager_.refuse_around(cluster);
  }

  // --- checkpoint/restore -------------------------------------------------

  /// Serialises the full chip state — fabric switch programming, NoC
  /// rings/flows, region table, every processor slot and its nested AP —
  /// into `w`. The trace ring and metric registries are telemetry and
  /// excluded (docs/SNAPSHOT.md). Deterministic: saving the same state
  /// twice yields byte-identical buffers.
  void save(snapshot::Writer& w) const;

  /// Restores a checkpoint into this chip. The chip must have been
  /// constructed with the same ChipConfig geometry (width/height/layers/
  /// cluster spec) as the saved one; mismatches throw
  /// snapshot::SnapshotError. NoC delivery callbacks
  /// (noc().set_on_deliver) are not serialised — re-install after
  /// restore if used.
  void restore(snapshot::Reader& r);

  /// Whole-buffer convenience forms: attach a Writer/Reader to `snap`
  /// and report failures (corrupt bytes, geometry mismatch) as Status
  /// instead of exceptions. restore() rejects incremental delta
  /// containers (snapshot::is_delta) with kCorruptSnapshot — apply the
  /// chain via snapshot::materialize_chain first.
  Status save(snapshot::Snapshot& snap) const;
  Status restore(const snapshot::Snapshot& snap);

  /// save() plus the incremental side channel: records the section
  /// index, per-layer byte spans, and per-layer dirty generations into
  /// `out` (out.flat is byte-identical to a plain save()).
  Status save_profiled(SaveProfile& out) const;

  /// Incremental save against `base` (a SaveProfile this same chip
  /// produced earlier): layers whose dirty generation is unchanged are
  /// spliced byte-for-byte from base.flat instead of re-serialised —
  /// the "layers mark themselves dirty on mutation" contract. The
  /// result is still byte-identical to a full save_profiled (the
  /// 100-seed sweeps pin this), so it composes with encode_delta for
  /// the byte-level win on layers that did change.
  Status save_profiled(SaveProfile& out, const SaveProfile& base) const;

  /// Prices this chip's cluster inventory with the paper's cost model at
  /// a given process node (an AP tile = one cluster here).
  cost::ScalingRow price_at(const cost::ProcessNode& node,
                            double die_area_cm2 = 1.0) const;

  // --- energy / DVS (config_.energy.enabled) ------------------------------
  //
  // The meter is derived, not instrumented: energy_activity() folds the
  // serialized lifetime counters of every layer (manager -> live APs +
  // retired accumulator + worm/compaction; NoC flit totals), and the
  // EnergyModel prices them in integer femtojoules. The only state the
  // chip itself keeps is the DVS bookkeeping — the current ladder
  // level, energy settled at previously-held levels, and the activity
  // anchor where the current level took over — all serialized in the
  // "core.energy" header section so resume preserves governor state.

  bool energy_enabled() const { return config_.energy.enabled; }
  /// nullptr when energy accounting is off.
  const cost::EnergyModel* energy_model() const {
    return energy_model_ ? energy_model_.get() : nullptr;
  }
  std::size_t dvs_level() const { return dvs_level_; }
  std::uint64_t dvs_transitions() const { return dvs_transitions_; }
  /// The current operating point; requires energy accounting on.
  const cost::DvsPoint& dvs_point() const;

  /// Switches the chip to ladder index `level`: settles the activity
  /// accumulated so far at the old level's prices, re-anchors, and
  /// records the transition. No-op when `level` is already current.
  /// Throws PreconditionError when energy accounting is off or the
  /// level is outside the ladder.
  void set_dvs_level(std::size_t level);

  /// Folds the whole chip's lifetime activity (see class comment).
  cost::EnergyActivity energy_activity() const;

  /// Total energy so far: settled history plus activity since the
  /// anchor priced at the current level. Pure integer — bit-identical
  /// wherever the underlying counters are.
  cost::EnergyBreakdown energy_breakdown() const;
  std::uint64_t energy_total_fj() const {
    return energy_breakdown().total_fj();
  }

  /// ASCII map of the chip (layer 0): each cluster shows the processor
  /// that owns it ('A'..'Z' cycling), '.' when free, 'x' when
  /// quarantined defective — the fig. 4(c) conceptual layout, live.
  std::string render_layout();

 private:
  /// Writes the "core.chip" section + geometry fingerprint, and (when
  /// energy accounting is on) the "core.energy" DVS state — shared by
  /// save() and save_profiled() so the two streams cannot drift. Both
  /// sections live in the header run that save_profiled always
  /// re-serialises, so incremental splices never carry stale DVS state.
  void save_header(snapshot::Writer& w) const;

  ChipConfig config_;
  Trace trace_;
  topology::STopologyFabric fabric_;
  noc::NocFabric noc_;
  scaling::ScalingManager manager_;

  /// Energy/DVS meter state; engaged iff config_.energy.enabled.
  std::unique_ptr<cost::EnergyModel> energy_model_;
  std::size_t dvs_level_ = 0;
  std::uint64_t dvs_transitions_ = 0;
  /// Energy settled at previously-held DVS levels, and the activity
  /// snapshot where the current level took over.
  cost::EnergyBreakdown settled_;
  cost::EnergyActivity anchor_;
};

}  // namespace vlsip::core
