// Status / StatusOr: the non-throwing half of the facade API.
//
// The simulation layers below core/ signal precondition violations and
// snapshot corruption with exceptions (VLSIP_REQUIRE, SnapshotError) —
// correct for a simulator's internal invariants, but awkward for
// callers driving the chip from tools or services, where "this fuse
// didn't fit" is an expected outcome, not a bug. The facade therefore
// exposes try_*/save/restore entry points that catch at the boundary
// and return a Status, and vlsipc maps non-OK statuses to JSON `error`
// objects plus nonzero exit codes.
//
//   auto fused = chip.try_fuse(4);
//   if (!fused.ok()) { log(fused.status().message()); return; }
//   chip.activate(*fused);
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/require.hpp"

namespace vlsip {

enum class StatusCode {
  kOk,
  /// A precondition or argument was violated (bad id, illegal state
  /// transition, shape that cannot exist).
  kInvalidArgument,
  /// The chip cannot satisfy the request right now (no contiguous free
  /// run, reservation conflict) — retrying after release/compact may
  /// succeed.
  kUnavailable,
  /// A checkpoint failed to parse: bad magic, future version,
  /// truncation, or geometry mismatch with the restoring chip.
  kCorruptSnapshot,
  /// Filesystem-level failure reading or writing a checkpoint.
  kIoError,
  /// A wire frame or message is malformed: bad magic, unknown message
  /// type, undecodable payload, or trailing garbage after a payload.
  kProtocolError,
  /// The peer speaks a protocol version newer than this build supports.
  kVersionMismatch,
  /// A wire frame ended before its declared payload length (or before
  /// the header itself was complete).
  kFrameTruncated,
  /// A wire frame declared a payload larger than the receiver's limit.
  kFrameOversized,
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kCorruptSnapshot: return "corrupt_snapshot";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kProtocolError: return "protocol_error";
    case StatusCode::kVersionMismatch: return "version_mismatch";
    case StatusCode::kFrameTruncated: return "frame_truncated";
    case StatusCode::kFrameOversized: return "frame_oversized";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>" — the form vlsipc prints.
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence. Deliberately minimal:
/// value access on a non-OK StatusOr is a precondition error, matching
/// the repo's fail-fast style everywhere else.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    VLSIP_REQUIRE(!status_.ok(), "StatusOr built from OK status needs a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const {
    VLSIP_REQUIRE(ok(), "value() on non-OK StatusOr");
    return *value_;
  }
  T& value() {
    VLSIP_REQUIRE(ok(), "value() on non-OK StatusOr");
    return *value_;
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vlsip
