#include "core/vlsi_processor.hpp"

#include <unordered_map>

#include "common/require.hpp"
#include "snapshot/incremental.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::core {

VlsiProcessor::VlsiProcessor(ChipConfig config)
    : config_(config),
      trace_(config.enable_trace),
      fabric_(config.width, config.height, config.cluster, config.layers),
      noc_(config.width, config.height, config.router),
      manager_(fabric_, noc_, config.scaling,
               config.enable_trace ? &trace_ : nullptr) {
  if (config_.energy.enabled) {
    energy_model_ = std::make_unique<cost::EnergyModel>(config_.energy);
    dvs_level_ = config_.energy.initial_level;
  }
}

scaling::ProcId VlsiProcessor::fuse(std::size_t clusters) {
  return manager_.allocate(clusters);
}

scaling::ProcId VlsiProcessor::fuse_path(
    const std::vector<topology::ClusterId>& path, bool ring) {
  return manager_.allocate_path(path, ring);
}

void VlsiProcessor::split(scaling::ProcId id, std::size_t keep_clusters) {
  manager_.downscale(id, keep_clusters);
}

StatusOr<scaling::ProcId> VlsiProcessor::try_fuse(std::size_t clusters) {
  try {
    const scaling::ProcId id = fuse(clusters);
    if (id == scaling::kNoProc) {
      return Status(StatusCode::kUnavailable,
                    "no contiguous free run of " + std::to_string(clusters) +
                        " clusters (try release or compact)");
    }
    return id;
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

StatusOr<scaling::ProcId> VlsiProcessor::try_fuse_path(
    const std::vector<topology::ClusterId>& path, bool ring) {
  try {
    const scaling::ProcId id = fuse_path(path, ring);
    if (id == scaling::kNoProc) {
      return Status(StatusCode::kUnavailable,
                    "cluster path is occupied, defective, or conflicted");
    }
    return id;
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

Status VlsiProcessor::try_split(scaling::ProcId id,
                                std::size_t keep_clusters) {
  try {
    split(id, keep_clusters);
    return Status::Ok();
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

StatusOr<RunResult> VlsiProcessor::try_run_program(
    scaling::ProcId id, const arch::Program& program,
    const std::map<std::string, std::vector<arch::Word>>& inputs,
    std::size_t expected_per_output, std::uint64_t max_cycles) {
  try {
    return run_program(id, program, inputs, expected_per_output, max_cycles);
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

RunResult VlsiProcessor::run_program(
    scaling::ProcId id, const arch::Program& program,
    const std::map<std::string, std::vector<arch::Word>>& inputs,
    std::size_t expected_per_output, std::uint64_t max_cycles) {
  VLSIP_REQUIRE(manager_.alive(id), "processor is not alive");
  // Configuration data is stored while inactive (§3.3); execution runs
  // active. run_program handles both transitions for convenience.
  const bool was_inactive =
      manager_.state(id) == scaling::ProcState::kInactive;
  ap::AdaptiveProcessor& ap = manager_.processor(id);

  RunResult result;
  result.config = ap.configure(program);
  for (const auto& [name, words] : inputs) {
    for (const auto& w : words) ap.feed(name, w);
  }
  if (was_inactive) manager_.activate(id);
  result.exec = ap.run(expected_per_output, max_cycles);
  for (const auto& [name, obj] : program.outputs) {
    (void)obj;
    result.outputs[name] = ap.output(name);
  }
  if (was_inactive) manager_.deactivate(id);
  return result;
}

std::string VlsiProcessor::render_layout() {
  std::string out;
  // Map regions to letters by processor id for stability. Built once per
  // render instead of scanning live_processors() for every cell.
  std::unordered_map<topology::RegionId, char> region_letter;
  for (const auto p : manager_.live_processors()) {
    region_letter.emplace(manager_.info(p).region,
                          static_cast<char>('A' + (p % 26)));
  }
  for (int y = 0; y < config_.height; ++y) {
    for (int x = 0; x < config_.width; ++x) {
      const auto cluster = fabric_.at({x, y, 0});
      char c = '.';
      if (manager_.is_defective(cluster)) {
        c = 'x';
      } else {
        const auto region = manager_.regions().owner(cluster);
        if (region != topology::kNoRegion) {
          // Quarantine regions are defective and already handled above;
          // a region without a live owner renders as '?'.
          const auto it = region_letter.find(region);
          c = it == region_letter.end() ? '?' : it->second;
        }
      }
      out += c;
    }
    out += '\n';
  }
  return out;
}

cost::ScalingRow VlsiProcessor::price_at(const cost::ProcessNode& node,
                                         double die_area_cm2) const {
  cost::ApComposition ap;
  ap.physical_objects = config_.cluster.physical_objects;
  ap.memory_objects = config_.cluster.memory_objects;
  return cost::evaluate_node(node, ap, die_area_cm2);
}

void VlsiProcessor::save_header(snapshot::Writer& w) const {
  w.section("core.chip");
  w.i32(config_.width);
  w.i32(config_.height);
  w.i32(config_.layers);
  w.i32(config_.cluster.physical_objects);
  w.i32(config_.cluster.memory_objects);
  w.i32(config_.cluster.system_objects);
  // DVS meter state rides in the header run (always re-serialised by
  // save_profiled, never spliced), gated on the chip's own config so
  // energy-off snapshots keep their pre-energy byte layout.
  if (config_.energy.enabled) {
    w.section("core.energy");
    w.u64(dvs_level_);
    w.u64(dvs_transitions_);
    w.vec_u64(std::vector<std::uint64_t>(anchor_.units.begin(),
                                         anchor_.units.end()));
    w.vec_u64(std::vector<std::uint64_t>(settled_.dynamic_fj.begin(),
                                         settled_.dynamic_fj.end()));
    w.u64(settled_.leakage_fj);
  }
}

void VlsiProcessor::save(snapshot::Writer& w) const {
  save_header(w);
  // Restore order matters: the region manager validates against the
  // fabric and the scaling manager re-instantiates APs whose nested
  // codecs assume the NoC is already in place.
  fabric_.save(w);
  noc_.save(w);
  manager_.save(w);
}

void VlsiProcessor::restore(snapshot::Reader& r) {
  r.section("core.chip");
  const bool geometry_ok =
      r.i32() == config_.width && r.i32() == config_.height &&
      r.i32() == config_.layers &&
      r.i32() == config_.cluster.physical_objects &&
      r.i32() == config_.cluster.memory_objects &&
      r.i32() == config_.cluster.system_objects;
  if (!geometry_ok) {
    throw snapshot::SnapshotError(
        "snapshot chip geometry mismatch (different ChipConfig?)");
  }
  if (config_.energy.enabled) {
    r.section("core.energy");
    const std::uint64_t level = r.u64();
    if (level >= energy_model_->levels()) {
      throw snapshot::SnapshotError("snapshot DVS level outside the ladder");
    }
    dvs_level_ = static_cast<std::size_t>(level);
    dvs_transitions_ = r.u64();
    const std::vector<std::uint64_t> anchor = r.vec_u64();
    const std::vector<std::uint64_t> dyn = r.vec_u64();
    if (anchor.size() != cost::kEnergyClassCount ||
        dyn.size() != cost::kEnergyClassCount) {
      throw snapshot::SnapshotError("snapshot energy vector mismatch");
    }
    anchor_ = {};
    settled_ = {};
    for (std::size_t i = 0; i < cost::kEnergyClassCount; ++i) {
      anchor_.units[i] = anchor[i];
      settled_.dynamic_fj[i] = dyn[i];
    }
    settled_.leakage_fj = r.u64();
  }
  fabric_.restore(r);
  noc_.restore(r);
  manager_.restore(r);
}

Status VlsiProcessor::save(snapshot::Snapshot& snap) const {
  try {
    snapshot::Writer w(snap);
    save(w);
    return Status::Ok();
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

Status VlsiProcessor::save_profiled(SaveProfile& out) const {
  return save_profiled(out, SaveProfile{});
}

Status VlsiProcessor::save_profiled(SaveProfile& out,
                                    const SaveProfile& base) const {
  try {
    // `out` may alias `base` at the call site; serialise into a local
    // profile and move it over at the end.
    SaveProfile fresh;
    snapshot::Writer w(fresh.flat);
    w.set_section_index(&fresh.index);
    save_header(w);

    const std::array<std::uint64_t, 3> gens = {
        fabric_.dirty_gen(), noc_.dirty_gen(), manager_.dirty_gen()};

    // Splices base.flat's bytes for layer `i` (its index entries come
    // along, shifted to the new offsets) — valid only when the layer's
    // dirty generation proves its serialised form unchanged.
    const auto splice = [&](std::size_t i) {
      const std::size_t begin = base.layer_marks[i];
      const std::size_t end =
          i + 1 < base.layer_marks.size() ? base.layer_marks[i + 1]
                                          : base.flat.size();
      const std::ptrdiff_t shift =
          static_cast<std::ptrdiff_t>(w.offset()) -
          static_cast<std::ptrdiff_t>(begin);
      w.append_raw(base.flat.bytes().data() + begin, end - begin);
      for (const auto& entry : base.index.entries) {
        if (entry.offset >= begin && entry.offset < end) {
          fresh.index.entries.push_back(
              {entry.tag,
               static_cast<std::size_t>(
                   static_cast<std::ptrdiff_t>(entry.offset) + shift)});
        }
      }
    };
    // The splice appends index entries directly, bypassing section();
    // order stays correct because layers serialise in stream order.
    const bool base_usable = base.valid();
    fresh.layer_marks[0] = w.offset();
    if (base_usable && gens[0] == base.layer_gens[0]) {
      splice(0);
    } else {
      fabric_.save(w);
    }
    fresh.layer_marks[1] = w.offset();
    if (base_usable && gens[1] == base.layer_gens[1]) {
      splice(1);
    } else {
      noc_.save(w);
    }
    fresh.layer_marks[2] = w.offset();
    if (base_usable && gens[2] == base.layer_gens[2]) {
      splice(2);
    } else {
      manager_.save(w);
    }
    fresh.layer_gens = gens;
    w.set_section_index(nullptr);
    out = std::move(fresh);
    return Status::Ok();
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

Status VlsiProcessor::restore(const snapshot::Snapshot& snap) {
  if (snapshot::is_delta(snap)) {
    return Status(StatusCode::kCorruptSnapshot,
                  "snapshot is an incremental delta container; materialize "
                  "its chain first (snapshot::materialize_chain)");
  }
  try {
    snapshot::Reader r(snap);
    restore(r);
    return Status::Ok();
  } catch (const snapshot::SnapshotError& e) {
    return Status(StatusCode::kCorruptSnapshot, e.what());
  } catch (const std::logic_error& e) {
    return Status(StatusCode::kInvalidArgument, e.what());
  }
}

void VlsiProcessor::export_obs(obs::MetricRegistry& registry) const {
  noc_.export_obs(registry);
  manager_.export_obs(registry);
  registry.gauge("chip.total_clusters") =
      static_cast<double>(total_clusters());
  registry.gauge("chip.free_clusters") =
      static_cast<double>(free_clusters());
  registry.gauge("chip.defective_clusters") =
      static_cast<double>(defective_clusters());
  registry.counter("chip.trace_events_dropped") += trace_.dropped();
  // Presence-gated: an energy-off chip emits no energy keys, keeping
  // pre-energy JSON reports byte-identical.
  if (config_.energy.enabled) {
    const cost::EnergyBreakdown b = energy_breakdown();
    registry.counter("chip.energy.total_fj") += b.total_fj();
    registry.counter("chip.energy.dynamic_fj") += b.dynamic_total_fj();
    registry.counter("chip.energy.leakage_fj") += b.leakage_fj;
    registry.gauge("chip.energy.dvs_level") = static_cast<double>(dvs_level_);
    registry.counter("chip.energy.dvs_transitions") += dvs_transitions_;
  }
}

const cost::DvsPoint& VlsiProcessor::dvs_point() const {
  VLSIP_REQUIRE(energy_model_ != nullptr, "energy accounting is off");
  return energy_model_->point(dvs_level_);
}

void VlsiProcessor::set_dvs_level(std::size_t level) {
  VLSIP_REQUIRE(energy_model_ != nullptr, "energy accounting is off");
  VLSIP_REQUIRE(level < energy_model_->levels(),
                "DVS level outside the ladder");
  if (level == dvs_level_) return;
  // Settle everything run at the old level before switching prices.
  const cost::EnergyActivity act = energy_activity();
  settled_.add(energy_model_->price(act.since(anchor_), dvs_level_));
  anchor_ = act;
  dvs_level_ = level;
  ++dvs_transitions_;
}

cost::EnergyActivity VlsiProcessor::energy_activity() const {
  cost::EnergyActivity a;
  manager_.fold_energy(a);
  noc_.fold_energy(a);
  return a;
}

cost::EnergyBreakdown VlsiProcessor::energy_breakdown() const {
  // Energy-off chips meter nothing: a zero breakdown, not a throw, so
  // callers can read the meter unconditionally.
  if (energy_model_ == nullptr) return {};
  cost::EnergyBreakdown b = settled_;
  b.add(energy_model_->price(energy_activity().since(anchor_), dvs_level_));
  return b;
}

}  // namespace vlsip::core
