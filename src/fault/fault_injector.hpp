// FaultInjector — replays a FaultPlan against one chip.
//
// The injector owns a cursor into a (sorted) plan; advance_to(cycle)
// applies every event that has come due, touching the chip through the
// same public surfaces the rest of the stack uses: cluster faults go
// through ScalingManager::refuse_around (release + quarantine + re-fuse),
// object faults through AdaptiveProcessor::handle_defective_object,
// switch faults stick the link's reservation flag, CSD faults kill a
// channel segment (with reroute), memory faults poison a bank. Worker
// events are farm-level and are skipped here — the ChipFarm consumes
// them from the same plan type.
//
// apply_chip_event() is the shared single-event core so the farm can
// drive the identical fault semantics against its per-worker chips.
#pragma once

#include <cstdint>

#include "core/vlsi_processor.hpp"
#include "fault/fault_plan.hpp"

namespace vlsip::fault {

struct InjectionStats {
  /// Events consumed (applied + skipped).
  std::uint64_t fired = 0;
  /// Events that changed chip state.
  std::uint64_t applied = 0;
  /// Events with nothing to hit (no live processor, already-dead
  /// target, farm-only kind).
  std::uint64_t skipped = 0;

  std::uint64_t clusters_faulted = 0;
  std::uint64_t objects_faulted = 0;
  std::uint64_t switches_stuck = 0;
  std::uint64_t segments_killed = 0;
  std::uint64_t routes_rerouted = 0;
  std::uint64_t routes_dropped = 0;
  std::uint64_t memory_banks_poisoned = 0;
  /// Replacement processors successfully re-fused after cluster faults.
  std::uint64_t refusals = 0;
  /// Compaction sweeps a re-fuse needed to find spare room.
  std::uint64_t compactions = 0;

  void merge(const InjectionStats& other);
};

/// Reservation owner used to model a stuck programmable switch: a link
/// reserved by this sentinel can never be wormed through again.
inline constexpr topology::RegionId kStuckSwitch = 0xFFFFFFFEu;

/// Applies one chip-level event immediately. Returns true if the chip
/// changed; false when the event cannot apply (farm-only kind, no live
/// processor to host an object/CSD/memory fault, target already dead).
/// Cluster-fault replacements are released back to the pool right away:
/// the point is proving the chip can still re-fuse the victim's size,
/// while leaving placement to the caller's next allocation.
bool apply_chip_event(core::VlsiProcessor& chip, const FaultEvent& event,
                      InjectionStats& stats);

class FaultInjector {
 public:
  /// Sorts the plan (idempotent) and binds it to `chip`.
  FaultInjector(core::VlsiProcessor& chip, FaultPlan plan);

  /// Applies every not-yet-fired event with at <= cycle, in order.
  /// Returns how many fired (applied or skipped).
  std::size_t advance_to(std::uint64_t cycle);

  bool exhausted() const { return next_ >= plan_.events.size(); }
  std::size_t pending() const { return plan_.events.size() - next_; }
  const InjectionStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  core::VlsiProcessor& chip_;
  FaultPlan plan_;
  std::size_t next_ = 0;
  InjectionStats stats_;
};

}  // namespace vlsip::fault
