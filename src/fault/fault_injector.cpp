#include "fault/fault_injector.hpp"

#include "common/require.hpp"

namespace vlsip::fault {

void InjectionStats::merge(const InjectionStats& other) {
  fired += other.fired;
  applied += other.applied;
  skipped += other.skipped;
  clusters_faulted += other.clusters_faulted;
  objects_faulted += other.objects_faulted;
  switches_stuck += other.switches_stuck;
  segments_killed += other.segments_killed;
  routes_rerouted += other.routes_rerouted;
  routes_dropped += other.routes_dropped;
  memory_banks_poisoned += other.memory_banks_poisoned;
  refusals += other.refusals;
  compactions += other.compactions;
}

namespace {

/// Picks a live processor to host an AP-level fault, or kNoProc.
scaling::ProcId pick_live(core::VlsiProcessor& chip, std::uint64_t target) {
  const auto procs = chip.manager().live_processors();
  if (procs.empty()) return scaling::kNoProc;
  return procs[target % procs.size()];
}

bool apply_cluster(core::VlsiProcessor& chip, const FaultEvent& event,
                   InjectionStats& stats) {
  const auto cluster = static_cast<topology::ClusterId>(
      event.target % chip.total_clusters());
  if (chip.manager().is_defective(cluster)) return false;
  const auto recovery = chip.manager().refuse_around(cluster);
  ++stats.clusters_faulted;
  if (recovery.compacted) ++stats.compactions;
  if (recovery.replacement != scaling::kNoProc) {
    ++stats.refusals;
    // Prove the re-fuse, then return the spares to the pool: the next
    // allocation (a farm batch, the caller's own fuse) owns placement.
    chip.manager().release(recovery.replacement);
  }
  return true;
}

bool apply_object(core::VlsiProcessor& chip, const FaultEvent& event,
                  InjectionStats& stats) {
  const auto proc = pick_live(chip, event.target);
  if (proc == scaling::kNoProc) return false;
  auto& ap = chip.manager().processor(proc);
  if (ap.capacity() <= 1) return false;  // cannot shrink to nothing
  ap.handle_defective_object();
  ++stats.objects_faulted;
  return true;
}

bool apply_switch(core::VlsiProcessor& chip, const FaultEvent& event,
                  InjectionStats& stats) {
  auto& fabric = chip.fabric();
  auto& manager = chip.manager();
  const auto a = static_cast<topology::ClusterId>(
      event.target % chip.total_clusters());
  const auto neighbors = fabric.neighbors(a);
  if (neighbors.empty()) return false;
  const auto b = neighbors[event.arg % neighbors.size()];
  if (fabric.reservation(a, b) == kStuckSwitch) return false;  // already

  // A stuck switch inside a live region breaks the region's chain: the
  // processor spanning it must fault-release and re-fuse elsewhere.
  const auto oa = manager.regions().owner(a);
  const auto ob = manager.regions().owner(b);
  if (oa != topology::kNoRegion && oa == ob) {
    const auto recovery = manager.refuse_around(b);
    if (recovery.compacted) ++stats.compactions;
    if (recovery.replacement != scaling::kNoProc) {
      ++stats.refusals;
      manager.release(recovery.replacement);
    }
  }
  // Stick the reservation flag: every future configuration worm over
  // this boundary conflicts and backs off (§3.3's reservation check).
  if (fabric.reservation(a, b) != topology::kNoRegion) {
    fabric.clear_reservation(a, b);
  }
  fabric.reserve(a, b, kStuckSwitch);
  ++stats.switches_stuck;
  return true;
}

bool apply_csd_segment(core::VlsiProcessor& chip, const FaultEvent& event,
                       InjectionStats& stats) {
  const auto proc = pick_live(chip, event.target);
  if (proc == scaling::kNoProc) return false;
  auto& net = chip.manager().processor(proc).network_mut();
  if (net.channel_count() == 0 || net.positions() < 2) return false;
  const auto channel =
      static_cast<csd::ChannelId>(event.arg % net.channel_count());
  const auto segment = static_cast<csd::Position>(
      (event.arg / net.channel_count()) % (net.positions() - 1));
  if (net.segment_dead(channel, segment)) return false;
  const auto kill = net.kill_segment(channel, segment);
  ++stats.segments_killed;
  stats.routes_rerouted += kill.rerouted;
  stats.routes_dropped += kill.dropped;
  return true;
}

bool apply_memory(core::VlsiProcessor& chip, const FaultEvent& event,
                  InjectionStats& stats) {
  const auto proc = pick_live(chip, event.target);
  if (proc == scaling::kNoProc) return false;
  auto& memory = chip.manager().processor(proc).memory();
  const int bank =
      static_cast<int>(event.arg % static_cast<std::uint64_t>(
                                       memory.block_count()));
  if (memory.block_poisoned(bank)) return false;
  memory.poison_block(bank);
  ++stats.memory_banks_poisoned;
  return true;
}

}  // namespace

bool apply_chip_event(core::VlsiProcessor& chip, const FaultEvent& event,
                      InjectionStats& stats) {
  switch (event.kind) {
    case FaultKind::kCluster: return apply_cluster(chip, event, stats);
    case FaultKind::kObject: return apply_object(chip, event, stats);
    case FaultKind::kSwitch: return apply_switch(chip, event, stats);
    case FaultKind::kCsdSegment:
      return apply_csd_segment(chip, event, stats);
    case FaultKind::kMemoryBlock: return apply_memory(chip, event, stats);
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      return false;  // farm-level; the ChipFarm consumes these
  }
  return false;
}

FaultInjector::FaultInjector(core::VlsiProcessor& chip, FaultPlan plan)
    : chip_(chip), plan_(std::move(plan)) {
  plan_.sort();
}

std::size_t FaultInjector::advance_to(std::uint64_t cycle) {
  std::size_t fired = 0;
  while (next_ < plan_.events.size() && plan_.events[next_].at <= cycle) {
    const FaultEvent& event = plan_.events[next_++];
    ++fired;
    ++stats_.fired;
    if (apply_chip_event(chip_, event, stats_)) {
      ++stats_.applied;
    } else {
      ++stats_.skipped;
    }
  }
  return fired;
}

}  // namespace vlsip::fault
