#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vlsip::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCluster: return "cluster";
    case FaultKind::kObject: return "object";
    case FaultKind::kSwitch: return "switch";
    case FaultKind::kCsdSegment: return "csd-segment";
    case FaultKind::kMemoryBlock: return "memory-block";
    case FaultKind::kWorkerStall: return "worker-stall";
    case FaultKind::kWorkerCrash: return "worker-crash";
  }
  return "unknown";
}

std::string describe(const FaultEvent& event) {
  std::ostringstream out;
  out << "at " << event.at << ": " << to_string(event.kind)
      << " target=" << event.target;
  if (event.arg != 0) out << " arg=" << event.arg;
  return out.str();
}

std::size_t FaultPlan::count(FaultKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

std::string FaultPlan::render() const {
  std::ostringstream out;
  out << "fault plan (seed " << seed << ", " << events.size()
      << " events)\n";
  for (const auto& e : events) out << "  " << describe(e) << "\n";
  return out.str();
}

FaultPlan random_fault_plan(const FaultPlanSpec& spec) {
  VLSIP_REQUIRE(spec.horizon >= 1, "plan horizon must be positive");
  VLSIP_REQUIRE(spec.clusters >= 1, "plan needs a cluster range");

  struct Weighted {
    FaultKind kind;
    double weight;
  };
  const Weighted table[] = {
      {FaultKind::kCluster, spec.w_cluster},
      {FaultKind::kObject, spec.w_object},
      {FaultKind::kSwitch, spec.w_switch},
      {FaultKind::kCsdSegment, spec.w_csd_segment},
      {FaultKind::kMemoryBlock, spec.w_memory},
      {FaultKind::kWorkerStall, spec.w_worker_stall},
      {FaultKind::kWorkerCrash, spec.w_worker_crash},
  };
  double total = 0.0;
  for (const auto& w : table) total += std::max(0.0, w.weight);
  VLSIP_REQUIRE(total > 0.0, "at least one fault kind must be enabled");

  const std::size_t max_cluster_kills = static_cast<std::size_t>(
      spec.max_cluster_fault_fraction *
      static_cast<double>(spec.clusters));

  Xoshiro256 rng(spec.seed);
  FaultPlan plan;
  plan.seed = spec.seed;
  plan.events.reserve(spec.events);
  std::size_t cluster_kills = 0;
  for (std::size_t i = 0; i < spec.events; ++i) {
    FaultEvent e;
    e.at = rng.uniform(spec.horizon);
    double pick = rng.uniform01() * total;
    e.kind = FaultKind::kCluster;
    for (const auto& w : table) {
      const double weight = std::max(0.0, w.weight);
      if (pick < weight) {
        e.kind = w.kind;
        break;
      }
      pick -= weight;
    }
    // The acceptance envelope: cluster kills beyond the cap degrade to
    // object faults so a plan can never brick the whole chip.
    if (e.kind == FaultKind::kCluster && cluster_kills >= max_cluster_kills) {
      e.kind = FaultKind::kObject;
    }
    switch (e.kind) {
      case FaultKind::kCluster:
        ++cluster_kills;
        e.target = rng.uniform(spec.clusters);
        break;
      case FaultKind::kObject:
        e.target = rng.next();
        break;
      case FaultKind::kSwitch:
        e.target = rng.uniform(spec.clusters);
        e.arg = rng.next();
        break;
      case FaultKind::kCsdSegment:
        e.target = rng.next();
        // Pack channel + segment into arg; the injector unpacks modulo
        // the live AP's actual network dimensions.
        e.arg = rng.uniform(spec.csd_channels) +
                spec.csd_channels *
                    rng.uniform(std::max<std::size_t>(
                        1, spec.csd_positions - 1));
        break;
      case FaultKind::kMemoryBlock:
        e.target = rng.next();
        e.arg = rng.uniform(std::max<std::size_t>(1, spec.memory_banks));
        break;
      case FaultKind::kWorkerStall:
        e.target = rng.uniform(std::max<std::size_t>(1, spec.workers));
        e.arg = 1 + rng.uniform(std::max<std::uint64_t>(1, spec.max_stall));
        break;
      case FaultKind::kWorkerCrash:
        e.target = rng.uniform(std::max<std::size_t>(1, spec.workers));
        break;
    }
    plan.events.push_back(e);
  }
  plan.sort();
  return plan;
}

}  // namespace vlsip::fault
