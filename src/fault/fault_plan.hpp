// Seeded fault plans — failures as declarative, reproducible inputs.
//
// The paper's scaling protocol (§3.3–3.4) exists so a dynamic CMP keeps
// operating when objects are released or defective; the per-processor
// release/inactive/active/sleep state machine is its own fault-tolerance
// hook. A FaultPlan turns that from a configuration-time property into a
// runtime input: a sorted list of events, each flipping one hardware
// resource (cluster, physical object, programmable switch, CSD channel
// segment, memory bank) into a defective state at a chosen trigger
// point, or stalling/crashing a chip-farm worker mid-service.
//
// Plans are generated from a 64-bit seed through the repo's
// deterministic RNG (common/rng.*), so any chaos run is bit-reproducible
// from (seed, spec) alone — the property the chaos/fuzz harnesses in
// tests/ and the `vlsipc chaos` verb pin down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vlsip::fault {

enum class FaultKind : std::uint8_t {
  /// A whole cluster dies: quarantined, its processor fault-released
  /// and re-fused elsewhere (ScalingManager::refuse_around).
  kCluster = 0,
  /// One physical object of a live AP dies: capacity C shrinks by one
  /// (AdaptiveProcessor::handle_defective_object).
  kObject,
  /// A programmable chain switch sticks: the link becomes permanently
  /// unusable for configuration worms; a region spanning it is broken.
  kSwitch,
  /// One CSD channel hop segment breaks: routes over it re-handshake
  /// on surviving channels (DynamicCsdNetwork::kill_segment).
  kCsdSegment,
  /// One memory bank dies: reads return poison, writes are dropped
  /// (MemorySystem::poison_block).
  kMemoryBlock,
  /// A farm worker stalls for `arg` ticks mid-service (GC pause, IO
  /// hiccup); consumed by the ChipFarm, ignored by the chip injector.
  kWorkerStall,
  /// A farm worker's chip dies mid-batch: unserved jobs are requeued
  /// onto healthy chips and the dead chip is quarantined.
  kWorkerCrash,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  /// Trigger point. The chip-level FaultInjector interprets it as a
  /// cycle (advance_to); the ChipFarm interprets it as a global
  /// serve-sequence number (fires before the Nth service attempt
  /// farm-wide), which keeps triggering deterministic under the farm's
  /// virtual clock.
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kCluster;
  /// Primary target, taken modulo the applicable resource count:
  /// cluster id, live-processor pick, or worker index.
  std::uint64_t target = 0;
  /// Secondary operand: neighbour pick (switch), channel+segment pack
  /// (CSD), memory bank, or stall ticks.
  std::uint64_t arg = 0;
};

/// One line, e.g. "at 120: cluster target=7".
std::string describe(const FaultEvent& event);

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Kept sorted by `at` (stable, so same-trigger events keep their
  /// generation order).
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }
  std::size_t count(FaultKind kind) const;
  void sort();
  /// One describe() line per event.
  std::string render() const;
};

/// Shape of the random plan: where triggers land, what the chip looks
/// like (for target ranges), and the per-kind mix.
struct FaultPlanSpec {
  std::uint64_t seed = 1;
  std::size_t events = 8;
  /// Triggers are uniform in [0, horizon).
  std::uint64_t horizon = 1000;

  // Target ranges (match the chip under test).
  std::size_t clusters = 64;
  std::size_t csd_channels = 16;
  std::size_t csd_positions = 32;
  std::size_t memory_banks = 16;
  std::size_t workers = 1;
  std::uint64_t max_stall = 512;

  // Relative weights per kind; 0 disables a kind.
  double w_cluster = 1.0;
  double w_object = 1.0;
  double w_switch = 1.0;
  double w_csd_segment = 1.0;
  double w_memory = 1.0;
  double w_worker_stall = 0.0;
  double w_worker_crash = 0.0;

  /// Ceiling on cluster kills as a fraction of `clusters` — the chaos
  /// acceptance envelope (≤ 20% of objects faulted keeps a spare-
  /// clustered chip schedulable). Excess draws degrade to object
  /// faults.
  double max_cluster_fault_fraction = 0.2;
};

/// Deterministic: the same spec yields the same plan on every platform.
FaultPlan random_fault_plan(const FaultPlanSpec& spec);

}  // namespace vlsip::fault
