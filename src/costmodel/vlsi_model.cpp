#include "costmodel/vlsi_model.hpp"

#include <cmath>

#include "common/require.hpp"

namespace vlsip::cost {

double ApComposition::area_lambda2() const {
  VLSIP_REQUIRE(physical_objects >= 1, "AP needs physical objects");
  VLSIP_REQUIRE(memory_objects >= 0, "negative memory objects");
  double area = physical_objects * physical_object_table().total() +
                memory_objects * memory_block_table().total();
  if (include_control) area += control_objects_table().total();
  return area;
}

ScalingRow evaluate_node(const ProcessNode& node, const ApComposition& ap,
                         double die_area_cm2) {
  VLSIP_REQUIRE(die_area_cm2 > 0.0, "die area must be positive");
  ScalingRow row;
  row.year = node.year;
  row.feature_nm = node.feature_nm;
  row.ap_area_cm2 = node.lambda2_to_cm2(ap.area_lambda2());
  row.available_aps =
      static_cast<int>(std::floor(die_area_cm2 / row.ap_area_cm2));
  row.wire_length_mm = std::sqrt(row.ap_area_cm2) * 10.0;  // cm -> mm
  row.wire_delay_ns = node.wire_delay_ns(row.wire_length_mm);
  row.clock_ghz = 1.0 / row.wire_delay_ns;
  // One chained operation per physical object per wire traversal,
  // excluding the load and store streams (§4.1).
  row.peak_gops =
      row.available_aps * ap.physical_objects * row.clock_ghz;
  return row;
}

ScalingRow evaluate_node_3d(const ProcessNode& node, const ApComposition& ap,
                            double die_area_cm2, int layers,
                            double tsv_delay_ns) {
  VLSIP_REQUIRE(layers >= 1 && layers <= 2,
                "fig. 6(d) is chip-on-chip: one or two dies");
  VLSIP_REQUIRE(tsv_delay_ns >= 0.0, "negative via delay");
  ScalingRow row;
  row.year = node.year;
  row.feature_nm = node.feature_nm;
  const double ap_area = node.lambda2_to_cm2(ap.area_lambda2());
  row.ap_area_cm2 = ap_area;
  // `layers` dies of silicon over one footprint.
  row.available_aps = static_cast<int>(
      std::floor(layers * die_area_cm2 / ap_area));
  // The tile's footprint shrinks to area/layers; the global wire spans
  // its diagonal dimension, plus one through-die via when stacked.
  row.wire_length_mm =
      std::sqrt(ap_area / static_cast<double>(layers)) * 10.0;
  row.wire_delay_ns = node.wire_delay_ns(row.wire_length_mm) +
                      (layers > 1 ? tsv_delay_ns : 0.0);
  row.clock_ghz = 1.0 / row.wire_delay_ns;
  row.peak_gops = row.available_aps * ap.physical_objects * row.clock_ghz;
  return row;
}

std::vector<ScalingRow> scaling_table(const ApComposition& ap,
                                      double die_area_cm2) {
  std::vector<ScalingRow> rows;
  for (const auto& node : itrs_nodes()) {
    rows.push_back(evaluate_node(node, ap, die_area_cm2));
  }
  return rows;
}

const std::vector<PaperScalingRow>& paper_table4() {
  static const std::vector<PaperScalingRow> rows = {
      {2010, 45.0, 12, 1.08, 178.0},
      {2011, 40.0, 16, 1.21, 211.0},
      {2012, 36.0, 21, 1.21, 276.0},
      {2013, 32.0, 24, 1.43, 269.0},
      {2014, 28.0, 34, 1.58, 345.0},
      {2015, 25.0, 41, 1.56, 432.0},
  };
  return rows;
}

GpuComparison gpu_comparison(const ScalingRow& row, const ApComposition& ap) {
  GpuComparison cmp;
  cmp.density_ratio = 3.0;  // "traditional GPUs ... at least three-times
                            // the area" (§4.1)
  cmp.vlsi_fpus = static_cast<double>(row.available_aps) *
                  ap.physical_objects;
  cmp.gpu_equivalent_fpus = cmp.vlsi_fpus / cmp.density_ratio;
  return cmp;
}

}  // namespace vlsip::cost
