// EnergyModel — the λ² cost model gone live (ROADMAP item 5).
//
// The offline half of src/costmodel/ prices *area*: λ²-normalised
// module inventories (Tables 1–3) times a technology node. This header
// adds the *energy* half: every unit of work the cycle engine already
// counts — an ALU firing, a flit-hop, a CSD handshake cycle, a config
// worm hop — maps to an activity class, and each class carries an
// integer femtojoule price derived from its λ² area at the chosen node
// (switched capacitance ∝ area, E = C·V²) plus a leakage price per
// idle cycle.
//
// Two design rules make the accounting free and exact:
//
//  1. Activity is derived, not instrumented. An EnergyActivity vector
//     is folded *from the serialized lifetime counters* each layer
//     already maintains (ExecStats, CSD grant/handshake counters, NoC
//     flit totals, ScalingStats) — never from engine-private telemetry
//     (wakes, quiescence skips). The hot paths gain zero instructions;
//     determinism across dense / event-driven / forced-scalar engines
//     and across checkpoint/resume is inherited from the counters the
//     100-seed differential wall already pins.
//
//  2. Prices are integers. The per-(class, DVS level) fJ tables are
//     rounded once at model construction; pricing an activity vector
//     is pure u64 multiply-accumulate, so energy totals are
//     bit-deterministic wherever the counters are.
//
// DVS: an operating point is a (frequency %, voltage %) pair of
// nominal. Dynamic energy scales with V² (f cancels per *event*: fewer
// joules per second but the same events happen); leakage per cycle
// scales with V·(1/f) — a slower clock leaks longer per cycle. See
// docs/ENERGY.md for the derivation and the governor built on top.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/technology.hpp"

namespace vlsip::cost {

/// Activity classes. Each maps to an existing serialized lifetime
/// counter somewhere in the stack (the fold_energy() methods name the
/// exact sources).
enum EnergyClass : std::size_t {
  kEnergyIntOp = 0,     // executor integer ALU/shift/mul firings
  kEnergyFloatOp,       // executor FPU firings
  kEnergyMemOp,         // memory-block load/store firings
  kEnergyTransportOp,   // transport firings + tokens moved on chains
  kEnergyConfigCycle,   // configuration-pipeline cycles (incl. faults)
  kEnergyActiveCycle,   // executor cycles with work (clock tree, WSRF)
  kEnergyIdleCycle,     // executor idle cycles — leakage only
  kEnergyNocFlit,       // NoC flit-hops moved between routers
  kEnergyNocDelivery,   // NoC packets ejected at their sink
  kEnergyCsdHandshake,  // CSD handshake cycles (2·span+2 per route)
  kEnergyCsdRequest,    // CSD route requests hitting arbitration
  kEnergyWormHop,       // scaling worm configuration packet-hops
  kEnergyRelocation,    // compaction / defect-relocation state copies
  kEnergyClassCount
};

/// Stable dot-free name for a class ("int_ops", "noc_flits", ...).
const char* energy_class_name(std::size_t cls);

/// Integer activity vector — one u64 per class. Layers fold their
/// counters in with fold_energy(EnergyActivity&); the vector is then
/// priced by an EnergyModel.
struct EnergyActivity {
  std::array<std::uint64_t, kEnergyClassCount> units{};

  void add(const EnergyActivity& o) {
    for (std::size_t i = 0; i < kEnergyClassCount; ++i) units[i] += o.units[i];
  }
  /// Per-class saturating difference (for "activity since an anchor").
  EnergyActivity since(const EnergyActivity& anchor) const {
    EnergyActivity d;
    for (std::size_t i = 0; i < kEnergyClassCount; ++i) {
      d.units[i] = units[i] >= anchor.units[i] ? units[i] - anchor.units[i] : 0;
    }
    return d;
  }
  std::uint64_t total_units() const {
    std::uint64_t t = 0;
    for (const auto u : units) t += u;
    return t;
  }
  bool operator==(const EnergyActivity&) const = default;
};

/// One DVS operating point, in integer percent of nominal. Integer
/// percents keep every derived quantity (scaled prices, virtual-clock
/// stretch) exactly reproducible.
struct DvsPoint {
  std::uint32_t freq_pct = 100;
  std::uint32_t volt_pct = 100;
  bool operator==(const DvsPoint&) const = default;
};

/// The default five-point ladder: nominal down to a 40%-clock /
/// 65%-voltage deep-throttle point (dynamic energy there is
/// 0.65² ≈ 42% of nominal per event).
std::vector<DvsPoint> default_dvs_ladder();

/// Chip-level energy model configuration (embedded in ChipConfig).
struct EnergySpec {
  /// Off by default: the model is never constructed, no snapshot
  /// section is written, no obs keys appear — reports stay
  /// byte-identical to pre-energy builds.
  bool enabled = false;
  /// ITRS node the chip is priced at (Table 4 years 2010–2015;
  /// other years extrapolate).
  int node_year = 2012;
  /// DVS operating points, nominal first. Empty -> default ladder.
  std::vector<DvsPoint> ladder;
  /// Ladder index the chip starts at.
  std::size_t initial_level = 0;
};

/// Priced activity: per-class dynamic fJ plus pooled leakage fJ.
struct EnergyBreakdown {
  std::array<std::uint64_t, kEnergyClassCount> dynamic_fj{};
  std::uint64_t leakage_fj = 0;

  std::uint64_t dynamic_total_fj() const {
    std::uint64_t t = 0;
    for (const auto f : dynamic_fj) t += f;
    return t;
  }
  std::uint64_t total_fj() const { return dynamic_total_fj() + leakage_fj; }
  void add(const EnergyBreakdown& o) {
    for (std::size_t i = 0; i < kEnergyClassCount; ++i)
      dynamic_fj[i] += o.dynamic_fj[i];
    leakage_fj += o.leakage_fj;
  }
};

class EnergyModel {
 public:
  /// Builds the per-(class, level) integer fJ tables for the spec's
  /// node and ladder. Construction does the only floating-point work;
  /// everything after is u64 arithmetic.
  explicit EnergyModel(const EnergySpec& spec);

  const EnergySpec& spec() const { return spec_; }
  const std::vector<DvsPoint>& ladder() const { return ladder_; }
  std::size_t levels() const { return ladder_.size(); }
  const DvsPoint& point(std::size_t level) const { return ladder_.at(level); }

  /// fJ per unit of `cls` at `level` (leakage class prices 0 here —
  /// idle cycles are priced by leak_fj_per_idle_cycle()).
  std::uint64_t unit_fj(std::size_t cls, std::size_t level) const {
    return unit_fj_.at(level)[cls];
  }
  std::uint64_t leak_fj_per_idle_cycle(std::size_t level) const {
    return leak_fj_.at(level);
  }

  /// Prices an activity vector at one operating point. Pure integer.
  EnergyBreakdown price(const EnergyActivity& a, std::size_t level) const;
  std::uint64_t price_total_fj(const EnergyActivity& a,
                               std::size_t level) const {
    return price(a, level).total_fj();
  }

 private:
  EnergySpec spec_;
  std::vector<DvsPoint> ladder_;
  /// unit_fj_[level][class]; leak_fj_[level] per idle cycle.
  std::vector<std::array<std::uint64_t, kEnergyClassCount>> unit_fj_;
  std::vector<std::uint64_t> leak_fj_;
};

/// Nominal-ladder GOPS/W at a process node, for a canonical op mix
/// (one integer op + its share of clock tree, token transport, memory
/// traffic, NoC flits, and leakage). Used by bench/table4 to extend
/// the paper's scaling table with an energy-efficiency column.
double gops_per_watt(const ProcessNode& node);
/// Same, resolving the node from its ITRS year (extrapolating off-table
/// years exactly like EnergySpec::node_year does).
double gops_per_watt(int node_year);

}  // namespace vlsip::cost
