#include "costmodel/areas.hpp"

#include "common/require.hpp"

namespace vlsip::cost {

double register_area(int count) {
  VLSIP_REQUIRE(count >= 0, "register count cannot be negative");
  return kReg64Area * count;
}

double AreaTable::total() const {
  double sum = 0.0;
  for (const auto& m : modules) sum += m.area_lambda2;
  return sum;
}

AreaTable physical_object_table() {
  return AreaTable{
      "Physical Object Area Requirement",
      {
          {"64b fMul, fAdd", 0.25, 1.35e8},
          {"64b fDiv", 0.25, 0.21e8},
          {"64b iMul + iALU/Shift", 0.25, 2.90e8},
          {"64b iDiv", 0.25, 0.81e8},
          {"64b Register x6", 0.25, register_area(6)},
      },
      5.32e8,
  };
}

AreaTable memory_block_table() {
  return AreaTable{
      "Memory Block Area Requirement",
      {
          {"32b ALU-I", 0.25, 0.86e8},
          {"16b ALU-II x4", 0.21, 1.72e8},
          {"Instruction Reg.", 0.25, 1.79e6},
          {"64b Register x2", 0.25, register_area(2)},
          {"64KB SRAM", 0.35, 7.13e8},
      },
      9.75e8,
  };
}

AreaTable control_objects_table() {
  const ControlRegisterCounts counts;
  return AreaTable{
      "Control Objects Area Requirement",
      {
          {"64b x40 Reg. in WSRF", 0.25, register_area(counts.wsrf)},
          {"64b x6 Reg. in CMH", 0.25, register_area(counts.cmh)},
          {"64b x8 Reg. x2 in RR", 0.25, register_area(counts.rr)},
          {"64b Reg. in IRR x16", 0.25, register_area(counts.irr)},
          {"64b x2 Reg. x3 in CFB", 0.25, register_area(counts.cfb)},
      },
      75.2e6,
  };
}

double fpu_area_fraction_of_physical_object() {
  const auto table = physical_object_table();
  const double fpu = table.modules[0].area_lambda2 +
                     table.modules[1].area_lambda2;  // fMul/fAdd + fDiv
  return fpu / table.total();
}

double fpu_area_fraction_of_ap() {
  const double po = physical_object_table().total();
  const double mb = memory_block_table().total();
  const double fpu = fpu_area_fraction_of_physical_object() * po;
  // 1:1 object counts, memory block ≈ twice the physical object's area —
  // "the area ratio of physical to memory objects is 1:2" (§4.1).
  return fpu / (po + mb);
}

}  // namespace vlsip::cost
