#include "costmodel/technology.hpp"

#include <cmath>

#include "common/require.hpp"

namespace vlsip::cost {

double ProcessNode::lambda_cm() const {
  return feature_nm * kLambdaPerFeature * 1e-7;  // nm -> cm
}

double ProcessNode::lambda2_to_cm2(double area_lambda2) const {
  const double l = lambda_cm();
  return area_lambda2 * l * l;
}

double ProcessNode::wire_delay_ns(double length_mm) const {
  return rc_ns_per_mm2 * length_mm * length_mm;
}

const std::vector<ProcessNode>& itrs_nodes() {
  static const std::vector<ProcessNode> nodes = {
      {2010, 45.0, 0.138},
      {2011, 40.0, 0.196},
      {2012, 36.0, 0.241},
      {2013, 32.0, 0.361},
      {2014, 28.0, 0.521},
      {2015, 25.0, 0.645},
  };
  return nodes;
}

const ProcessNode& node_for_year(int year) {
  for (const auto& n : itrs_nodes()) {
    if (n.year == year) return n;
  }
  VLSIP_REQUIRE(false, "year outside Table 4 range; use extrapolate_node");
  return itrs_nodes().front();  // unreachable
}

ProcessNode extrapolate_node(int year) {
  const auto& nodes = itrs_nodes();
  if (year >= nodes.front().year && year <= nodes.back().year) {
    return node_for_year(year);
  }
  const auto& first = nodes.front();
  const auto& last = nodes.back();
  const double years = last.year - first.year;
  const double feature_ratio =
      std::pow(last.feature_nm / first.feature_nm, 1.0 / years);
  const double rc_ratio =
      std::pow(last.rc_ns_per_mm2 / first.rc_ns_per_mm2, 1.0 / years);
  const double dy = year - last.year;
  ProcessNode n;
  n.year = year;
  n.feature_nm = last.feature_nm * std::pow(feature_ratio, dy);
  n.rc_ns_per_mm2 = last.rc_ns_per_mm2 * std::pow(rc_ratio, dy);
  VLSIP_REQUIRE(n.feature_nm > 0.5,
                "extrapolation below physical limits is meaningless");
  return n;
}

}  // namespace vlsip::cost
