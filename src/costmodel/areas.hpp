// λ²-normalised area inventories (paper §4.1, Tables 1–3).
//
// The module areas originate from Gupta et al.'s technology-independent
// estimates [12] with divider weights from [17]; they are inputs to the
// paper's model, so they are constants here. λ² areas are process-
// independent: multiplying by λ² (in cm²) for a given node yields the
// physical area.
//
// Internal consistency: every register row in the tables is a multiple of
// one 64-bit register = 5.36e6 / 6 λ² ≈ 8.93e5 λ² (derived from the
// "64b Register x6" row of Table 1) — the composition checks in the tests
// rebuild Tables 1–3 from that unit.
#pragma once

#include <string>
#include <vector>

namespace vlsip::cost {

/// Area of one 64-bit register in λ² (Table 1's "64b Register x6" row
/// divided by six).
inline constexpr double kReg64Area = 5.36e6 / 6.0;

/// Area of `count` 64-bit registers.
double register_area(int count);

struct ModuleArea {
  std::string name;
  double process_um;     // the process the source estimate was taken at
  double area_lambda2;   // λ², technology independent
};

struct AreaTable {
  std::string title;
  std::vector<ModuleArea> modules;
  /// The total the paper prints (rounded); measured totals come from
  /// total().
  double paper_total;

  double total() const;
};

/// Table 1: the physical object — 64-bit FP mul/add, FP div, integer
/// mul + ALU/shift, integer div, six 64-bit registers.
AreaTable physical_object_table();

/// Table 2: the memory block — 32-bit ALU-I, four 16-bit ALU-II (vector
/// length / hardware loop), instruction register, two 64-bit registers,
/// 64 KB SRAM.
AreaTable memory_block_table();

/// Table 3: the control objects — WSRF (40 regs), CMH (6), RR (2x8),
/// IRR (16), CFB (3x2). Assessed as registers only, like the paper.
AreaTable control_objects_table();

/// Register counts behind Table 3, exposed so tests can rebuild the
/// table from kReg64Area.
struct ControlRegisterCounts {
  int wsrf = 40;
  int cmh = 6;
  int rr = 16;   // 8 x 2
  int irr = 16;
  int cfb = 6;   // 2 x 3
  int total() const { return wsrf + cmh + rr + irr + cfb; }
};

/// FPU share of the physical object (fMul/fAdd + fDiv over total) — the
/// §4.1 observation that "less than a 33% chip area is allocated to the
/// FPUs" once the 1:2 physical:memory ratio is applied.
double fpu_area_fraction_of_physical_object();

/// FPU share of the whole AP tile (physical + memory objects, 1:1 count
/// with memory blocks twice the size).
double fpu_area_fraction_of_ap();

}  // namespace vlsip::cost
