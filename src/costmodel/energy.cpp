#include "costmodel/energy.hpp"

#include <cmath>

#include "common/require.hpp"
#include "costmodel/areas.hpp"

namespace vlsip::cost {
namespace {

/// Effective switched-capacitance density of active silicon,
/// farads per cm² (10 nF/cm²: gate + wire capacitance of the switching
/// fraction of a dense datapath — an order-of-magnitude calibration
/// that puts a 22 nm physical-object op in the ~100 fJ range, the
/// regime Epiphany-V reports for a 64-bit core op).
constexpr double kSwitchCapFPerCm2 = 1.0e-8;

/// Leakage energy density per clock cycle, fJ per cm² (subthreshold +
/// gate leakage of idle logic, again order-of-magnitude).
constexpr double kLeakFjPerCm2PerCycle = 2.0e4;

/// Fitted nominal supply voltage for a drawn feature size: constant
///-field scaling flattens out near 0.8 V at deep-submicron nodes.
double nominal_vdd(double feature_nm) {
  const double v = 1.2 * std::sqrt(feature_nm / 130.0);
  if (v < 0.8) return 0.8;
  if (v > 5.0) return 5.0;
  return v;
}

/// λ² area attributed to one unit of each activity class. Datapath
/// classes take their module inventory from Tables 1–3; interconnect
/// classes are assessed in register-equivalents like Table 3 assesses
/// the control objects.
double class_area_lambda2(std::size_t cls) {
  const double phys = physical_object_table().total();
  const double mem = memory_block_table().total();
  const double ctrl = control_objects_table().total();
  const double fpu_frac = fpu_area_fraction_of_physical_object();
  switch (cls) {
    case kEnergyIntOp:
      return phys * (1.0 - fpu_frac);
    case kEnergyFloatOp:
      return phys * fpu_frac;
    case kEnergyMemOp:
      // One access touches the SRAM periphery + one ALU-I, not the
      // whole 64 KB array.
      return mem * 0.25;
    case kEnergyTransportOp:
      return register_area(2);
    case kEnergyConfigCycle:
      return ctrl;
    case kEnergyActiveCycle:
      // Clock tree + control overhead of a live tile: 10% of the
      // physical+memory pair.
      return (phys + mem) * 0.10;
    case kEnergyIdleCycle:
      return 0.0;  // priced as leakage, not switching
    case kEnergyNocFlit:
      return register_area(4);  // flit buffer write + crossbar traversal
    case kEnergyNocDelivery:
      return register_area(8);  // ejection port + reassembly
    case kEnergyCsdHandshake:
      return register_area(1);  // one segment latch per handshake cycle
    case kEnergyCsdRequest:
      return register_area(2);  // arbitration logic
    case kEnergyWormHop:
      return register_area(6);  // switch-state write per worm hop
    case kEnergyRelocation:
      return mem * 0.5;  // state copy out + in
    default:
      return 0.0;
  }
}

/// Whole-tile area (physical + memory object) for the leakage pool.
double tile_area_lambda2() {
  return physical_object_table().total() + memory_block_table().total();
}

ProcessNode resolve_node(int year) {
  for (const auto& n : itrs_nodes()) {
    if (n.year == year) return n;
  }
  return extrapolate_node(year);
}

}  // namespace

const char* energy_class_name(std::size_t cls) {
  static const char* const kNames[kEnergyClassCount] = {
      "int_ops",       "float_ops",      "mem_ops",       "transport_ops",
      "config_cycles", "active_cycles",  "idle_cycles",   "noc_flits",
      "noc_deliveries", "csd_handshakes", "csd_requests", "worm_hops",
      "relocations",
  };
  VLSIP_REQUIRE(cls < kEnergyClassCount, "energy class out of range");
  return kNames[cls];
}

std::vector<DvsPoint> default_dvs_ladder() {
  return {{100, 100}, {85, 90}, {70, 80}, {55, 72}, {40, 65}};
}

EnergyModel::EnergyModel(const EnergySpec& spec) : spec_(spec) {
  ladder_ = spec.ladder.empty() ? default_dvs_ladder() : spec.ladder;
  VLSIP_REQUIRE(!ladder_.empty(), "DVS ladder must not be empty");
  for (const auto& p : ladder_) {
    VLSIP_REQUIRE(p.freq_pct >= 1 && p.freq_pct <= 100,
                  "DVS freq_pct must be in [1, 100]");
    VLSIP_REQUIRE(p.volt_pct >= 1 && p.volt_pct <= 100,
                  "DVS volt_pct must be in [1, 100]");
  }
  VLSIP_REQUIRE(spec.initial_level < ladder_.size(),
                "DVS initial_level outside the ladder");

  const ProcessNode node = resolve_node(spec.node_year);
  const double vdd = nominal_vdd(node.feature_nm);

  // Nominal per-unit energies in fJ: E = C_density · area_cm² · Vdd².
  std::array<double, kEnergyClassCount> base_fj{};
  for (std::size_t c = 0; c < kEnergyClassCount; ++c) {
    const double area_cm2 = node.lambda2_to_cm2(class_area_lambda2(c));
    base_fj[c] = kSwitchCapFPerCm2 * area_cm2 * vdd * vdd * 1e15;
  }
  const double leak_base_fj =
      kLeakFjPerCm2PerCycle * node.lambda2_to_cm2(tile_area_lambda2());

  // One rounding per (class, level); everything downstream is u64.
  unit_fj_.resize(ladder_.size());
  leak_fj_.resize(ladder_.size());
  for (std::size_t l = 0; l < ladder_.size(); ++l) {
    const double vscale =
        static_cast<double>(ladder_[l].volt_pct) * ladder_[l].volt_pct /
        10000.0;
    for (std::size_t c = 0; c < kEnergyClassCount; ++c) {
      unit_fj_[l][c] =
          static_cast<std::uint64_t>(std::llround(base_fj[c] * vscale));
    }
    // Leakage per cycle: ∝ V, and a slower clock leaks longer per cycle.
    leak_fj_[l] = static_cast<std::uint64_t>(std::llround(
        leak_base_fj * ladder_[l].volt_pct / ladder_[l].freq_pct));
  }
}

EnergyBreakdown EnergyModel::price(const EnergyActivity& a,
                                   std::size_t level) const {
  EnergyBreakdown out;
  const auto& tab = unit_fj_.at(level);
  for (std::size_t c = 0; c < kEnergyClassCount; ++c) {
    out.dynamic_fj[c] = a.units[c] * tab[c];
  }
  out.leakage_fj = a.units[kEnergyIdleCycle] * leak_fj_.at(level);
  return out;
}

double gops_per_watt(const ProcessNode& node) {
  EnergySpec spec;
  spec.enabled = true;
  spec.node_year = node.year;
  const EnergyModel model(spec);
  // Canonical op mix per delivered integer op: the op itself, a full
  // active cycle of clock/control, one token hop, a 1-in-4 memory
  // access, a 1-in-8 NoC flit, and one idle cycle of leakage riding
  // along (50% duty).
  const double fj_per_op =
      static_cast<double>(model.unit_fj(kEnergyIntOp, 0)) +
      static_cast<double>(model.unit_fj(kEnergyActiveCycle, 0)) +
      static_cast<double>(model.unit_fj(kEnergyTransportOp, 0)) +
      0.25 * static_cast<double>(model.unit_fj(kEnergyMemOp, 0)) +
      0.125 * static_cast<double>(model.unit_fj(kEnergyNocFlit, 0)) +
      static_cast<double>(model.leak_fj_per_idle_cycle(0));
  // GOPS/W = (ops/J) / 1e9 = 1e15 / fJ-per-op / 1e9.
  return 1e6 / fj_per_op;
}

double gops_per_watt(int node_year) {
  return gops_per_watt(resolve_node(node_year));
}

}  // namespace vlsip::cost
