// Process technology scaling (paper §4.1, Table 4 inputs).
//
// λ scaling: Table 4's "available # of APs" column is reproduced by
// λ = 0.4 × drawn feature size (reverse-engineered from the paper's own
// rows; the classic λ = F/2 under-counts by ~35%, while 0.4F lands every
// row within ±2 APs — the residue is the authors' use of exact ITRS-2007
// half-pitch values we cannot recover).
//
// Wire delay: a distributed-RC global wire of length L has Elmore delay
// 0.5·r·c·L². We store the per-node rc products (ns/mm²) calibrated to
// ITRS-2007 global wiring so the paper's delay column is reproduced; the
// non-monotonic bumps at 36 nm and 25 nm come straight from the ITRS
// data the paper used.
#pragma once

#include <vector>

namespace vlsip::cost {

/// λ per drawn feature size (see file comment).
inline constexpr double kLambdaPerFeature = 0.4;

struct ProcessNode {
  int year;
  double feature_nm;
  /// Distributed-RC product 0.5·r·c in ns/mm² for a global wire
  /// (ITRS-2007 calibration).
  double rc_ns_per_mm2;

  /// λ in centimetres.
  double lambda_cm() const;
  /// Physical area in cm² of an area given in λ².
  double lambda2_to_cm2(double area_lambda2) const;
  /// Elmore delay (ns) of a global wire of length `mm`.
  double wire_delay_ns(double length_mm) const;
};

/// The six nodes of Table 4 (2010–2015, 45 nm … 25 nm).
const std::vector<ProcessNode>& itrs_nodes();

/// Node for a Table 4 year; throws if the year is not in the table.
const ProcessNode& node_for_year(int year);

/// Extrapolated node beyond the table: feature size follows the 2010–15
/// trend (~0.89x/year), rc product follows the fitted exponential rise.
/// Usable for the process_scaling_explorer example's what-if queries.
ProcessNode extrapolate_node(int year);

}  // namespace vlsip::cost
