// The VLSI-processor cost assessment (paper §4.1, Table 4): available
// APs on a 1 cm² die, global-wire delay, and peak GOPS per process node.
//
// Model structure (exactly the paper's):
//   AP area  = N_po · A_physical_object + N_mb · A_memory_block + A_ctrl
//   #APs     = floor(die_area / AP_area)
//   L        = sqrt(AP area)   — the global wire chaining the memory
//              block and the physical object spans the AP tile
//   delay    = 0.5·r·c·L²      — distributed-RC Elmore (ITRS rc)
//   GOPS     = #APs · N_po / delay   — one chained 64-bit operation per
//              physical object per global-wire traversal, excluding the
//              load/store streams.
#pragma once

#include <vector>

#include "costmodel/areas.hpp"
#include "costmodel/technology.hpp"

namespace vlsip::cost {

/// Composition of one AP tile (the minimum adaptive processor).
struct ApComposition {
  int physical_objects = 16;
  int memory_objects = 16;
  bool include_control = true;

  /// Total λ² area of the AP tile.
  double area_lambda2() const;
};

struct ScalingRow {
  int year = 0;
  double feature_nm = 0.0;
  int available_aps = 0;
  double wire_delay_ns = 0.0;
  double peak_gops = 0.0;
  // Intermediates (useful for the bench output and tests):
  double ap_area_cm2 = 0.0;
  double wire_length_mm = 0.0;
  double clock_ghz = 0.0;  // 1 / wire_delay
};

/// Evaluates one node of the model.
ScalingRow evaluate_node(const ProcessNode& node, const ApComposition& ap,
                         double die_area_cm2 = 1.0);

/// The die-stacked variant (fig. 6 d): `layers` dies of `die_area_cm2`
/// footprint each. Twice the silicon fits in the same footprint AND the
/// AP tile's own footprint halves, so the global wire shortens to
/// sqrt(area/layers) — delay drops by ~1/layers (plus one through-die
/// via of `tsv_delay_ns` when stacked). This quantifies the option the
/// paper only sketches.
ScalingRow evaluate_node_3d(const ProcessNode& node, const ApComposition& ap,
                            double die_area_cm2 = 1.0, int layers = 2,
                            double tsv_delay_ns = 0.02);

/// The whole Table 4 (2010–2015) for a given AP composition and die.
std::vector<ScalingRow> scaling_table(const ApComposition& ap = {},
                                      double die_area_cm2 = 1.0);

/// The values the paper prints in Table 4, for paper-vs-measured output.
struct PaperScalingRow {
  int year;
  double process_nm;
  int available_aps;
  double wire_delay_ns;
  double peak_gops;
};
const std::vector<PaperScalingRow>& paper_table4();

/// §4.1's GPU remark quantified: a GPU-class die needs ~3x the area for
/// the same FPU count, so on equal area the VLSI processor fields ~3x
/// the FPUs and memory blocks. Returns the FPU-density ratio implied by
/// the paper's claim for the given node.
struct GpuComparison {
  double vlsi_fpus;          // physical objects across the die
  double gpu_equivalent_fpus;  // same die at 1/3 density
  double density_ratio;      // = 3 by the paper's claim
};
GpuComparison gpu_comparison(const ScalingRow& row, const ApComposition& ap);

}  // namespace vlsip::cost
