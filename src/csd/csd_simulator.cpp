#include "csd/csd_simulator.hpp"

#include <algorithm>
#include <unordered_map>

#include "arch/datapath.hpp"
#include "common/require.hpp"

namespace vlsip::csd {

FunctionalRunResult replay_stream(const arch::ConfigStream& stream,
                                  std::uint32_t n_objects,
                                  std::uint32_t n_channels,
                                  bool replace_existing_sink_chain) {
  DynamicCsdNetwork net(CsdConfig{n_objects, n_channels});
  FunctionalRunResult result;
  result.n_objects = n_objects;

  // (sink position, operand) -> established route: one upstream chain
  // per operand of each sink.
  std::unordered_map<std::uint64_t, RouteId> sink_chain;
  const auto key = [](Position sink, int operand) {
    return (static_cast<std::uint64_t>(sink) << 2) |
           static_cast<std::uint64_t>(operand);
  };

  for (const auto& e : stream.elements()) {
    if (e.source_count() == 0) continue;
    const auto sink = static_cast<Position>(e.sink % n_objects);
    for (int operand = 0; operand < arch::kMaxSources; ++operand) {
      if (e.sources[operand] == arch::kNoObject) continue;
      const auto source =
          static_cast<Position>(e.sources[operand] % n_objects);
      if (sink == source) continue;

      if (replace_existing_sink_chain) {
        auto it = sink_chain.find(key(sink, operand));
        if (it != sink_chain.end()) {
          net.release(it->second);
          sink_chain.erase(it);
        }
      }

      const auto route = net.establish(source, sink);
      if (route) {
        ++result.routed;
        sink_chain[key(sink, operand)] = *route;
      } else {
        ++result.rejected;
      }
      result.peak_used_channels =
          std::max(result.peak_used_channels, net.used_channels());
      result.peak_utilisation =
          std::max(result.peak_utilisation, net.utilisation());
    }
  }
  result.final_used_channels = net.used_channels();
  return result;
}

FunctionalRunResult run_functional_csd(const FunctionalRunConfig& config) {
  VLSIP_REQUIRE(config.n_objects >= 2, "need at least two objects");
  const auto stream = arch::random_config_stream(
      config.n_objects, config.n_elements, config.locality, config.seed,
      config.n_sources);
  auto result = replay_stream(stream, config.n_objects, config.n_channels,
                              config.replace_existing_sink_chain);
  result.locality = config.locality;
  return result;
}

std::vector<LocalityCurvePoint> locality_curve(
    std::uint32_t n_objects, const std::vector<double>& localities,
    std::uint32_t trials, std::uint64_t seed_base) {
  VLSIP_REQUIRE(trials >= 1, "need at least one trial");
  std::vector<LocalityCurvePoint> curve;
  curve.reserve(localities.size());
  for (double loc : localities) {
    double sum = 0.0;
    double peak = 0.0;
    for (std::uint32_t t = 0; t < trials; ++t) {
      FunctionalRunConfig cfg;
      cfg.n_objects = n_objects;
      cfg.n_channels = n_objects;  // unconstrained, as in fig. 3
      cfg.n_elements = n_objects;
      cfg.locality = loc;
      cfg.seed = seed_base + t * 0x9E3779B9ULL + n_objects;
      const auto r = run_functional_csd(cfg);
      sum += r.peak_used_channels;
      peak = std::max(peak, static_cast<double>(r.peak_used_channels));
    }
    curve.push_back(LocalityCurvePoint{
        loc, sum / static_cast<double>(trials), peak});
  }
  return curve;
}

std::vector<RoutabilityPoint> routability_sweep(
    std::uint32_t n_objects, const std::vector<std::uint32_t>& channel_counts,
    double locality, std::uint32_t trials, std::uint64_t seed_base) {
  VLSIP_REQUIRE(trials >= 1, "need at least one trial");
  std::vector<RoutabilityPoint> points;
  points.reserve(channel_counts.size());
  for (auto channels : channel_counts) {
    double success_sum = 0.0;
    for (std::uint32_t t = 0; t < trials; ++t) {
      FunctionalRunConfig cfg;
      cfg.n_objects = n_objects;
      cfg.n_channels = channels;
      cfg.n_elements = n_objects;
      cfg.locality = locality;
      cfg.seed = seed_base + t * 0x51ED2701ULL + channels;
      const auto r = run_functional_csd(cfg);
      const auto total = r.routed + r.rejected;
      success_sum += total == 0 ? 1.0
                                : static_cast<double>(r.routed) /
                                      static_cast<double>(total);
    }
    points.push_back(RoutabilityPoint{
        channels, success_sum / static_cast<double>(trials)});
  }
  return points;
}

}  // namespace vlsip::csd
