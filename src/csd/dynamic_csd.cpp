#include "csd/dynamic_csd.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"
#include "common/simd.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::csd {

DynamicCsdNetwork::DynamicCsdNetwork(CsdConfig config, Trace* trace)
    : config_(config), trace_(trace) {
  VLSIP_REQUIRE(config_.positions >= 2, "need at least two positions");
  VLSIP_REQUIRE(config_.channels >= 1, "need at least one channel");
  occupancy_.assign(static_cast<std::size_t>(config_.channels) *
                        (config_.positions - 1),
                    kNoRoute);
  dead_.assign(occupancy_.size(), false);
  blocked_.assign((occupancy_.size() + 63) / 64, 0ull);
  claimed_per_channel_.assign(config_.channels, 0);
}

std::size_t DynamicCsdNetwork::segment_index(ChannelId c, Position seg) const {
  return static_cast<std::size_t>(c) * (config_.positions - 1) + seg;
}

bool DynamicCsdNetwork::span_free(ChannelId channel, Position lo,
                                  Position hi) const {
  // A channel's segments are contiguous in the global index space, so a
  // span is one contiguous bit range: a masked head word, whole middle
  // words (tested several per compare via simd::range_all_zero — the
  // case that matters at 1024-position arrays, where one span covers
  // dozens of words), and a masked tail word.
  const std::size_t b = segment_index(channel, lo);
  const std::size_t e = segment_index(channel, hi);
  if (b >= e) return true;
  const std::size_t bw = b >> 6;
  const std::size_t lw = (e - 1) >> 6;  // last word holding a span bit
  const std::uint64_t head = ~0ull << (b & 63);
  const std::uint64_t tail =
      (e & 63) ? ((1ull << (e & 63)) - 1) : ~0ull;
  if (bw == lw) return (blocked_[bw] & head & tail) == 0;
  if (blocked_[bw] & head) return false;
  if (!simd::range_all_zero(blocked_.data() + bw + 1, lw - bw - 1)) {
    return false;
  }
  return (blocked_[lw] & tail) == 0;
}

void DynamicCsdNetwork::claim(ChannelId c, Position lo, Position hi,
                              RouteId id) {
  for (Position s = lo; s < hi; ++s) {
    const std::size_t idx = segment_index(c, s);
    occupancy_[idx] = id;
    block_bit(idx);
  }
  claimed_per_channel_[c] += hi - lo;
  claimed_total_ += hi - lo;
  ++version_;
}

void DynamicCsdNetwork::unclaim(ChannelId c, Position lo, Position hi) {
  for (Position s = lo; s < hi; ++s) {
    const std::size_t idx = segment_index(c, s);
    occupancy_[idx] = kNoRoute;
    if (!dead_[idx]) unblock_bit(idx);
  }
  claimed_per_channel_[c] -= hi - lo;
  claimed_total_ -= hi - lo;
  ++version_;
}

std::optional<ChannelId> DynamicCsdNetwork::try_route(Position source,
                                                      Position sink) {
  VLSIP_REQUIRE(source < config_.positions && sink < config_.positions,
                "route endpoint out of range");
  VLSIP_REQUIRE(source != sink, "source and sink must differ");
  const Position lo = std::min(source, sink);
  const Position hi = std::max(source, sink);
  ++requests_;
  // Priority encoder at the sink: lowest-index channel whose span is
  // entirely chained (free) wins.
  for (ChannelId c = 0; c < config_.channels; ++c) {
    if (span_free(c, lo, hi)) {
      ++grants_;
      return c;
    }
  }
  ++rejects_;
  return std::nullopt;
}

std::optional<RouteId> DynamicCsdNetwork::establish(Position source,
                                                    Position sink) {
  const auto channel = try_route(source, sink);
  if (!channel) {
    if (trace_) {
      trace_->event(now_, obs::Layer::kCsd, "csd", -1,
                    "route " + std::to_string(source) + "->" +
                        std::to_string(sink) + " REJECTED (no free channel)");
    }
    return std::nullopt;
  }

  RouteId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<RouteId>(routes_.size());
    routes_.push_back(Route{});
  }
  Route& r = routes_[id];
  r.id = id;
  r.source = source;
  r.sink = sink;
  r.channel = *channel;
  claim(*channel, r.lo(), r.hi(), id);
  ++active_routes_;

  now_ += handshake_latency(source, sink);
  if (trace_) {
    trace_->event(now_, obs::Layer::kCsd, "csd",
                  static_cast<std::int64_t>(id),
                  "route " + std::to_string(source) + "->" +
                      std::to_string(sink) + " granted channel " +
                      std::to_string(*channel),
                  handshake_latency(source, sink));
  }
  return id;
}

void DynamicCsdNetwork::release(RouteId id) {
  VLSIP_REQUIRE(id < routes_.size() && routes_[id].id != kNoRoute,
                "release of unknown route");
  Route& r = routes_[id];
  unclaim(r.channel, r.lo(), r.hi());
  r.id = kNoRoute;
  free_slots_.push_back(id);
  --active_routes_;
  if (trace_) {
    trace_->event(now_, obs::Layer::kCsd, "csd",
                  static_cast<std::int64_t>(id),
                  "route " + std::to_string(id) + " released");
  }
}

void DynamicCsdNetwork::release_at(Position p) {
  for (RouteId id = 0; id < routes_.size(); ++id) {
    const Route& r = routes_[id];
    if (r.id != kNoRoute && (r.source == p || r.sink == p)) {
      release(id);
    }
  }
}

std::optional<RouteId> DynamicCsdNetwork::establish_fanout(
    Position source, const std::vector<Position>& sinks) {
  VLSIP_REQUIRE(!sinks.empty(), "fan-out needs at least one sink");
  Position lo = source;
  Position hi = source;
  for (Position s : sinks) {
    VLSIP_REQUIRE(s < config_.positions, "fan-out sink out of range");
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  VLSIP_REQUIRE(hi > lo, "fan-out must span at least one segment");
  ++requests_;
  for (ChannelId c = 0; c < config_.channels; ++c) {
    if (!span_free(c, lo, hi)) continue;
    ++grants_;
    RouteId id;
    if (!free_slots_.empty()) {
      id = free_slots_.back();
      free_slots_.pop_back();
    } else {
      id = static_cast<RouteId>(routes_.size());
      routes_.push_back(Route{});
    }
    Route& r = routes_[id];
    r.id = id;
    r.source = source;
    // Record the farthest sink; the claim covers every sink in between.
    r.sink = (hi == source) ? lo : hi;
    r.channel = c;
    claim(c, lo, hi, id);
    ++active_routes_;
    if (trace_) {
      trace_->event(now_, obs::Layer::kCsd, "csd",
                    static_cast<std::int64_t>(id),
                    "fanout from " + std::to_string(source) + " over [" +
                        std::to_string(lo) + "," + std::to_string(hi) +
                        "] on channel " + std::to_string(c));
    }
    return id;
  }
  ++rejects_;
  return std::nullopt;
}

void DynamicCsdNetwork::shift_down_one() {
  // Shift claims by +1 position. Work on a cleared occupancy map so a
  // claim moving into a segment vacated by another claim is handled
  // order-independently.
  std::fill(occupancy_.begin(), occupancy_.end(), kNoRoute);
  std::fill(blocked_.begin(), blocked_.end(), 0ull);
  std::fill(claimed_per_channel_.begin(), claimed_per_channel_.end(), 0u);
  claimed_total_ = 0;
  for (std::size_t i = 0; i < dead_.size(); ++i) {
    if (dead_[i]) block_bit(i);
  }
  ++version_;
  for (RouteId id = 0; id < routes_.size(); ++id) {
    Route& r = routes_[id];
    if (r.id == kNoRoute) continue;
    if (r.hi() + 1 >= config_.positions) {
      // The route's deepest endpoint passed the bottom of the stack
      // (top = position 0): the evicted object's chains are torn down.
      r.id = kNoRoute;
      free_slots_.push_back(id);
      --active_routes_;
      if (trace_) {
        trace_->event(now_, obs::Layer::kCsd, "csd",
                      static_cast<std::int64_t>(id),
                      "route " + std::to_string(id) +
                          " dropped by stack shift (evicted)");
      }
      continue;
    }
    ++r.source;
    ++r.sink;
    // The shifted span may now cover a dead segment (dead segments are
    // wire positions: they do not move with the stack). Fall back to
    // the priority encoder — any channel with a healthy free span — and
    // drop the route if none exists.
    if (!span_free(r.channel, r.lo(), r.hi())) {
      ChannelId fallback = config_.channels;
      for (ChannelId c = 0; c < config_.channels; ++c) {
        if (span_free(c, r.lo(), r.hi())) {
          fallback = c;
          break;
        }
      }
      if (fallback == config_.channels) {
        r.id = kNoRoute;
        free_slots_.push_back(id);
        --active_routes_;
        if (trace_) {
          trace_->event(now_, obs::Layer::kCsd, "csd",
                        static_cast<std::int64_t>(id),
                        "route " + std::to_string(id) +
                            " dropped by stack shift (dead segment)");
        }
        continue;
      }
      r.channel = fallback;
    }
    claim(r.channel, r.lo(), r.hi(), id);
  }
  ++now_;
  if (trace_) {
    trace_->event(now_, obs::Layer::kCsd, "csd", -1, "stack shift down");
  }
}

SegmentKillResult DynamicCsdNetwork::kill_segment(ChannelId channel,
                                                  Position segment) {
  VLSIP_REQUIRE(channel < config_.channels, "channel out of range");
  VLSIP_REQUIRE(segment < config_.positions - 1, "segment out of range");
  SegmentKillResult result;
  const std::size_t idx = segment_index(channel, segment);
  if (dead_[idx]) return result;  // already killed

  const RouteId victim = occupancy_[idx];
  if (victim != kNoRoute) {
    // Tear the route off the dead wire, then re-handshake: the fig. 2
    // procedure naturally finds a surviving channel.
    const Route torn = routes_[victim];
    release(victim);
    dead_[idx] = true;
    block_bit(idx);
    ++version_;
    result.affected = 1;
    if (establish(torn.source, torn.sink).has_value()) {
      ++result.rerouted;
    } else {
      ++result.dropped;
    }
  } else {
    dead_[idx] = true;
    block_bit(idx);
    ++version_;
  }
  ++segments_killed_;
  kill_reroutes_ += result.rerouted;
  kill_drops_ += result.dropped;
  if (trace_) {
    trace_->event(now_, obs::Layer::kCsd, "csd",
                  static_cast<std::int64_t>(channel),
                  "segment " + std::to_string(segment) + " of channel " +
                      std::to_string(channel) + " killed (" +
                      std::to_string(result.rerouted) + " rerouted, " +
                      std::to_string(result.dropped) + " dropped)");
  }
  return result;
}

bool DynamicCsdNetwork::segment_dead(ChannelId channel,
                                     Position segment) const {
  VLSIP_REQUIRE(channel < config_.channels, "channel out of range");
  VLSIP_REQUIRE(segment < config_.positions - 1, "segment out of range");
  return dead_[segment_index(channel, segment)];
}

std::size_t DynamicCsdNetwork::dead_segments() const {
  return static_cast<std::size_t>(
      std::count(dead_.begin(), dead_.end(), true));
}

ChannelId DynamicCsdNetwork::used_channels() const {
  return static_cast<ChannelId>(simd::count_nonzero_u32(
      claimed_per_channel_.data(), config_.channels));
}

std::size_t DynamicCsdNetwork::claimed_segments() const {
  return claimed_total_;
}

double DynamicCsdNetwork::utilisation() const {
  return occupancy_.empty()
             ? 0.0
             : static_cast<double>(claimed_segments()) /
                   static_cast<double>(occupancy_.size());
}

std::size_t DynamicCsdNetwork::active_routes() const { return active_routes_; }

std::uint64_t DynamicCsdNetwork::handshake_latency(Position source,
                                                   Position sink) {
  const Position span =
      source < sink ? sink - source : source - sink;
  // request propagation + priority encode + grant/unchain + ack return
  return static_cast<std::uint64_t>(span) + 1 + 1 +
         static_cast<std::uint64_t>(span);
}

void DynamicCsdNetwork::export_obs(obs::MetricRegistry& registry,
                                   const std::string& prefix) const {
  registry.counter(prefix + "requests") += requests_;
  registry.counter(prefix + "grants") += grants_;
  registry.counter(prefix + "rejects") += rejects_;
  registry.counter(prefix + "segments_killed") += segments_killed_;
  registry.counter(prefix + "kill_reroutes") += kill_reroutes_;
  registry.counter(prefix + "kill_drops") += kill_drops_;
  // Occupancy is point-in-time, not monotonic: gauges.
  registry.gauge(prefix + "active_routes") =
      static_cast<double>(active_routes());
  registry.gauge(prefix + "used_channels") =
      static_cast<double>(used_channels());
  registry.gauge(prefix + "claimed_segments") =
      static_cast<double>(claimed_segments());
  registry.gauge(prefix + "dead_segments") =
      static_cast<double>(dead_segments());
  registry.gauge(prefix + "utilisation") = utilisation();
}

std::string DynamicCsdNetwork::render() const {
  std::ostringstream out;
  const Position segs = config_.positions - 1;
  for (ChannelId c = 0; c < config_.channels; ++c) {
    out << "ch" << c << ": ";
    for (Position s = 0; s < segs; ++s) {
      const std::size_t idx = segment_index(c, s);
      out << (dead_[idx] ? 'X'
                         : (occupancy_[idx] == kNoRoute ? '.' : '#'));
    }
    out << "\n";
  }
  return out.str();
}

void DynamicCsdNetwork::save(snapshot::Writer& w) const {
  w.section("csd.network");
  w.u32(config_.positions);
  w.u32(config_.channels);
  w.u64(routes_.size());
  for (const auto& r : routes_) {
    w.u32(r.id);
    w.u32(r.source);
    w.u32(r.sink);
    w.u32(r.channel);
  }
  w.vec_u32(free_slots_);
  w.u64(active_routes_);
  std::vector<std::uint8_t> dead(dead_.size());
  for (std::size_t i = 0; i < dead_.size(); ++i) dead[i] = dead_[i] ? 1 : 0;
  w.vec_u8(dead);
  w.u64(now_);
  w.u64(requests_);
  w.u64(grants_);
  w.u64(rejects_);
  w.u64(segments_killed_);
  w.u64(kill_reroutes_);
  w.u64(kill_drops_);
  w.u64(version_);
}

void DynamicCsdNetwork::restore(snapshot::Reader& r) {
  r.section("csd.network");
  const Position positions = r.u32();
  const ChannelId channels = r.u32();
  VLSIP_REQUIRE(positions == config_.positions &&
                    channels == config_.channels,
                "snapshot CSD geometry mismatch");
  routes_.clear();
  const std::uint64_t n_routes = r.count(16);
  routes_.reserve(static_cast<std::size_t>(n_routes));
  for (std::uint64_t i = 0; i < n_routes; ++i) {
    Route route;
    route.id = r.u32();
    route.source = r.u32();
    route.sink = r.u32();
    route.channel = r.u32();
    routes_.push_back(route);
  }
  free_slots_ = r.vec_u32();
  active_routes_ = static_cast<std::size_t>(r.u64());
  const std::vector<std::uint8_t> dead = r.vec_u8();
  VLSIP_REQUIRE(dead.size() == dead_.size(),
                "snapshot CSD segment map mismatch");
  // Rebuild all derived claim state: clear, re-mark dead segments, then
  // re-claim every live route's span exactly as establish() did.
  std::fill(occupancy_.begin(), occupancy_.end(), kNoRoute);
  std::fill(blocked_.begin(), blocked_.end(), 0ull);
  std::fill(claimed_per_channel_.begin(), claimed_per_channel_.end(), 0u);
  claimed_total_ = 0;
  for (std::size_t i = 0; i < dead.size(); ++i) {
    dead_[i] = dead[i] != 0;
    if (dead_[i]) block_bit(i);
  }
  for (const auto& route : routes_) {
    if (route.id == kNoRoute) continue;
    claim(route.channel, route.lo(), route.hi(), route.id);
  }
  now_ = r.u64();
  requests_ = r.u64();
  grants_ = r.u64();
  rejects_ = r.u64();
  segments_killed_ = r.u64();
  kill_reroutes_ = r.u64();
  kill_drops_ = r.u64();
  version_ = r.u64();  // after claim() calls, which bump it
}

}  // namespace vlsip::csd
