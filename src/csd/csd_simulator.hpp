// Functional CSD simulator (paper §2.6.2 and fig. 3).
//
// Replays a randomly generated datapath configuration (one-source model)
// onto a DynamicCsdNetwork and measures channel usage. The workload
// matches the paper's description: sink object IDs are random; each
// element's source ID is the preceding sink ID plus a locality-controlled
// offset. Object IDs map to array positions via the stack placement
// (identity here — the functional simulator studies the network, not the
// pipeline, exactly as the paper's did).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/config_stream.hpp"
#include "csd/dynamic_csd.hpp"
#include "csd/global_network.hpp"

namespace vlsip::csd {

struct FunctionalRunResult {
  std::uint32_t n_objects = 0;
  double locality = 0.0;
  std::uint32_t peak_used_channels = 0;   // fig. 3's y-axis
  std::uint32_t final_used_channels = 0;
  std::uint32_t routed = 0;               // successfully chained elements
  std::uint32_t rejected = 0;             // routability failures
  double peak_utilisation = 0.0;          // claimed segments / total
};

struct FunctionalRunConfig {
  std::uint32_t n_objects = 64;
  /// Channels provisioned; fig. 3 provisions n_objects so the measured
  /// usage is unconstrained.
  std::uint32_t n_channels = 64;
  /// Elements in the random configuration; the paper configures a
  /// datapath over the whole array, so default = n_objects.
  std::uint32_t n_elements = 64;
  double locality = 0.5;
  std::uint64_t seed = 1;
  /// If true, an element whose sink was already chained releases the old
  /// chain(s) first (an object has one upstream chain per operand).
  /// Keeps long runs from saturating artificially.
  bool replace_existing_sink_chain = true;
  /// 1 = one-source model (the paper's fig. 3 evaluation); 2 = the
  /// two-source model it mentions as future evaluation.
  int n_sources = 1;
};

/// Runs one random datapath configuration and reports channel usage.
FunctionalRunResult run_functional_csd(const FunctionalRunConfig& config);

/// Replays an arbitrary configuration stream (IDs = positions, modulo the
/// array size) instead of generating a random one.
FunctionalRunResult replay_stream(const arch::ConfigStream& stream,
                                  std::uint32_t n_objects,
                                  std::uint32_t n_channels,
                                  bool replace_existing_sink_chain = true);

/// One fig. 3 curve: peak used channels per locality point, averaged over
/// `trials` seeds.
struct LocalityCurvePoint {
  double locality;
  double mean_peak_channels;
  double max_peak_channels;
};
std::vector<LocalityCurvePoint> locality_curve(
    std::uint32_t n_objects, const std::vector<double>& localities,
    std::uint32_t trials, std::uint64_t seed_base);

/// Routability experiment (§2.6.2 trade-off): success rate of chaining a
/// random datapath when only `n_channels` are provisioned.
struct RoutabilityPoint {
  std::uint32_t n_channels;
  double success_rate;  // routed / (routed + rejected), averaged
};
std::vector<RoutabilityPoint> routability_sweep(
    std::uint32_t n_objects, const std::vector<std::uint32_t>& channel_counts,
    double locality, std::uint32_t trials, std::uint64_t seed_base);

}  // namespace vlsip::csd
