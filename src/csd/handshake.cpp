#include "csd/handshake.hpp"

#include <cstring>

#include "common/require.hpp"
#include "common/simd.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::csd {

HandshakeSimulator::HandshakeSimulator(DynamicCsdNetwork& network)
    : network_(network) {}

std::uint32_t HandshakeSimulator::issue(Position source, Position sink) {
  VLSIP_REQUIRE(source < network_.positions() && sink < network_.positions(),
                "endpoint out of range");
  VLSIP_REQUIRE(source != sink, "source and sink must differ");
  HandshakeRequest r;
  r.id = static_cast<std::uint32_t>(reqs_.size());
  r.source = source;
  r.sink = sink;
  r.phase = HandshakePhase::kRequestPropagate;
  r.hops_left = source < sink ? sink - source : source - sink;
  r.issued_at = now_;
  reqs_.push_back(r);
  active_.push_back(r.id);
  return r.id;
}

std::size_t HandshakeSimulator::step() {
  std::size_t finished = 0;
  // In-flight requests are processed in issue order each cycle — this is
  // the deterministic serialisation the sink-side priority encoders
  // impose on same-cycle arrivals. Entries that reach a terminal state
  // are flagged here and compacted out below (stable order), so future
  // steps cost O(in-flight), not O(ever-issued).
  terminal_scratch_.assign(active_.size(), 0);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    HandshakeRequest& r = reqs_[active_[i]];
    switch (r.phase) {
      case HandshakePhase::kRequestPropagate:
        if (r.hops_left > 0) {
          --r.hops_left;
        }
        if (r.hops_left == 0) {
          r.phase = HandshakePhase::kEncode;
        }
        break;
      case HandshakePhase::kEncode: {
        // The encoder samples channel occupancy *now*: a span claimed by
        // an earlier grant (possibly this same cycle, for a lower id)
        // is unavailable.
        const auto route = network_.establish(r.source, r.sink);
        if (route) {
          r.route = *route;
          r.phase = HandshakePhase::kGrant;
        } else {
          r.phase = HandshakePhase::kRejected;
          r.finished_at = now_ + 1;
          ++rejected_;
          ++finished;
        }
        break;
      }
      case HandshakePhase::kGrant:
        // Grant cell written; unchaining done by establish(). The ack
        // starts travelling next cycle.
        r.phase = HandshakePhase::kAckPropagate;
        r.hops_left = r.source < r.sink ? r.sink - r.source
                                        : r.source - r.sink;
        break;
      case HandshakePhase::kAckPropagate:
        if (r.hops_left > 0) {
          --r.hops_left;
        }
        if (r.hops_left == 0) {
          r.phase = HandshakePhase::kDone;
          r.finished_at = now_ + 1;
          ++granted_;
          ++finished;
        }
        break;
      case HandshakePhase::kDone:
      case HandshakePhase::kRejected:
        break;
    }
    if (r.terminal()) terminal_scratch_[i] = 1;
  }
  // Stable compaction driven by the flag bytes: find the first terminal
  // entry with a SIMD sweep (the overwhelmingly common all-in-flight
  // cycle does zero writes), then memmove each surviving block left in
  // one shot instead of element-by-element copies.
  const std::uint8_t* flags = terminal_scratch_.data();
  const std::size_t n = active_.size();
  std::size_t src = simd::first_nonzero_byte(flags, n);
  if (src < n) {
    std::size_t dst = src;
    while (src < n) {
      while (src < n && flags[src]) ++src;  // skip the terminal run
      const std::size_t block =
          simd::first_nonzero_byte(flags + src, n - src);
      if (block > 0) {
        std::memmove(active_.data() + dst, active_.data() + src,
                     block * sizeof(std::uint32_t));
        dst += block;
        src += block;
      }
    }
    active_.resize(dst);
  }
  ++now_;
  return finished;
}

bool HandshakeSimulator::run_until_quiet(std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (all_terminal()) return true;
    step();
  }
  return all_terminal();
}

const HandshakeRequest& HandshakeSimulator::request(std::uint32_t id) const {
  VLSIP_REQUIRE(id < reqs_.size(), "unknown request");
  return reqs_[id];
}

void HandshakeSimulator::save(snapshot::Writer& w) const {
  w.section("csd.handshakes");
  w.u64(reqs_.size());
  for (const auto& q : reqs_) {
    w.u32(q.id);
    w.u32(q.source);
    w.u32(q.sink);
    w.u8(static_cast<std::uint8_t>(q.phase));
    w.u32(q.hops_left);
    w.b(q.route.has_value());
    w.u32(q.route.value_or(kNoRoute));
    w.u64(q.issued_at);
    w.u64(q.finished_at);
  }
  w.vec_u32(active_);
  w.u64(granted_);
  w.u64(rejected_);
  w.u64(now_);
}

void HandshakeSimulator::restore(snapshot::Reader& r) {
  r.section("csd.handshakes");
  reqs_.clear();
  const std::uint64_t n = r.count(35);
  reqs_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    HandshakeRequest q;
    q.id = r.u32();
    q.source = r.u32();
    q.sink = r.u32();
    q.phase = static_cast<HandshakePhase>(r.u8());
    q.hops_left = r.u32();
    const bool has_route = r.b();
    const RouteId route = r.u32();
    if (has_route) q.route = route;
    q.issued_at = r.u64();
    q.finished_at = r.u64();
    reqs_.push_back(q);
  }
  active_ = r.vec_u32();
  granted_ = static_cast<std::size_t>(r.u64());
  rejected_ = static_cast<std::size_t>(r.u64());
  now_ = r.u64();
}

}  // namespace vlsip::csd
