// Dynamic channel-segmentation-distribution (CSD) network (paper §2.6.2,
// fig. 2).
//
// The adaptive processor's objects sit on a linear array. A *channel* runs
// along the whole array and is segmented at every hop; segments default to
// "chained" (so an idle channel is one long wire) and are *unchained* by
// the routing procedure to isolate the span a communication actually uses.
// Because claims are spans, one channel can carry any number of pairwise
// disjoint communications — that is what lets the channel count stay far
// below the object count (fig. 3).
//
// Routing handshake (fig. 2): the source broadcasts a request on every
// channel; the request propagates hop by hop through chained request
// segments; the sink's priority encoder picks the lowest-index channel
// whose span is free; the grant is stored in a memory cell (which
// unchains the span and gates data into the sink) and travels back to the
// source as the acknowledgement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "costmodel/energy.hpp"
#include "obs/metrics.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::csd {

using Position = std::uint32_t;   // index on the linear object array
using ChannelId = std::uint32_t;
using RouteId = std::uint32_t;

inline constexpr RouteId kNoRoute = 0xFFFFFFFFu;

/// An established communication: source object position -> sink object
/// position on one channel, claiming the segment span between them.
struct Route {
  RouteId id = kNoRoute;
  Position source = 0;
  Position sink = 0;
  ChannelId channel = 0;

  Position lo() const { return source < sink ? source : sink; }
  Position hi() const { return source < sink ? sink : source; }
  /// Number of hop segments the route claims (>= 1; adjacent objects
  /// still claim the single segment between them).
  Position span() const { return hi() - lo(); }
};

struct CsdConfig {
  /// Number of object positions on the linear array (>= 2).
  Position positions = 16;
  /// Number of parallel channels. The paper's headline claim is that
  /// positions/2 suffices for random datapaths.
  ChannelId channels = 16;
};

/// Outcome of killing one channel hop segment: the routes torn off the
/// dead segment, how many found a healthy span on another channel, and
/// how many were dropped (their communication must re-handshake after
/// the owning object faults back in).
struct SegmentKillResult {
  std::size_t affected = 0;
  std::size_t rerouted = 0;
  std::size_t dropped = 0;
};

/// The dynamic CSD network. Immediate-mode interface: try_route() resolves
/// the full request/grant/ack handshake combinationally and returns the
/// granted channel; handshake_latency() reports the cycle cost the
/// cycle-level AP model charges for it.
class DynamicCsdNetwork {
 public:
  explicit DynamicCsdNetwork(CsdConfig config, Trace* trace = nullptr);

  Position positions() const { return config_.positions; }
  ChannelId channel_count() const { return config_.channels; }

  /// Attempts to establish source -> sink. Returns the granted channel or
  /// nullopt if every channel has a conflicting claim on the span
  /// (routability failure, §2.6.2's trade-off). source != sink required.
  std::optional<ChannelId> try_route(Position source, Position sink);

  /// As try_route, but also registers the route for later release/shift
  /// and returns its handle.
  std::optional<RouteId> establish(Position source, Position sink);

  /// Releases an established route, re-chaining its segments.
  void release(RouteId id);

  /// Releases every route touching position `p` (used when the object at
  /// p is evicted/replaced).
  void release_at(Position p);

  /// Fan-out (broadcast) claim: one channel spanning [lo(source,last
  /// sink) .. hi], reaching every sink in `sinks` (§2.6.2: remaining
  /// channels can be allocated to the fan-out).
  std::optional<RouteId> establish_fanout(Position source,
                                          const std::vector<Position>& sinks);

  /// Stack shift by one position toward the bottom (top-of-stack insert):
  /// every route endpoint moves +1; routes pushed past the bottom edge
  /// are dropped (their objects were evicted).
  void shift_down_one();

  // --- fault injection (§1's defect tolerance at wire granularity) -----

  /// Marks one hop segment of one channel permanently defective: the
  /// segment can no longer be chained into any span. A route claiming
  /// the segment is released and re-routed through the normal
  /// request/grant handshake on the surviving channels; if no channel
  /// has a healthy free span it is dropped. Killing an already-dead
  /// segment is a no-op reported as zero affected routes.
  SegmentKillResult kill_segment(ChannelId channel, Position segment);

  /// True if the hop segment has been killed.
  bool segment_dead(ChannelId channel, Position segment) const;

  /// Dead hop segments across all channels.
  std::size_t dead_segments() const;

  /// Number of channels with at least one claimed segment — the fig. 3
  /// metric.
  ChannelId used_channels() const;

  /// Total claimed hop segments across all channels.
  std::size_t claimed_segments() const;

  /// Channel utilisation in [0,1]: claimed segments / total segments.
  double utilisation() const;

  std::size_t active_routes() const;

  const std::vector<Route>& routes() const { return routes_; }

  /// Cycle cost of the fig. 2 handshake for a span of `distance` hops:
  /// request propagation (1 cycle/hop) + priority encode (1) + grant
  /// write & unchain (1) + ack propagation (1 cycle/hop).
  static std::uint64_t handshake_latency(Position source, Position sink);

  /// True if `channel` has no claim on any segment in [lo, hi).
  bool span_free(ChannelId channel, Position lo, Position hi) const;

  /// Claim-state generation: bumped by every mutation of segment state
  /// (establish/release/shift/kill). ChainSet::refresh uses it together
  /// with ObjectSpace::version to skip no-op re-resolutions.
  std::uint64_t version() const { return version_; }

  // --- observability ----------------------------------------------------

  /// Lifetime handshake accounting: every priority-encoder resolution is
  /// one request; it ends in a grant (some channel had a free span) or a
  /// reject (routability failure).
  std::uint64_t route_requests() const { return requests_; }
  std::uint64_t route_grants() const { return grants_; }
  std::uint64_t route_rejects() const { return rejects_; }

  /// Publishes handshake counters and segment-occupancy gauges into
  /// `registry` under "<prefix>..." names — this layer's probe into the
  /// observability spine.
  void export_obs(obs::MetricRegistry& registry,
                  const std::string& prefix = "csd.") const;

  /// Folds this network's lifetime activity into `a` (energy spine):
  /// handshake cycles (now_ accumulates 2·span+2 per established route,
  /// so it is hop-proportional) and priority-encoder resolutions. Both
  /// sources are serialized counters — energy derived from them
  /// survives checkpoint/resume bit-exactly.
  void fold_energy(cost::EnergyActivity& a) const {
    a.units[cost::kEnergyCsdHandshake] += now_;
    a.units[cost::kEnergyCsdRequest] += requests_;
  }

  std::string render() const;

  /// Checkpoint codec. Serializes routes, free slots, dead segments and
  /// counters; occupancy/blocked bitmaps and per-channel claim counts
  /// are *rebuilt* on restore by re-claiming every live route's span —
  /// derived state never hits the snapshot.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  std::size_t segment_index(ChannelId c, Position seg) const;
  void claim(ChannelId c, Position lo, Position hi, RouteId id);
  void unclaim(ChannelId c, Position lo, Position hi);
  void block_bit(std::size_t idx) {
    blocked_[idx >> 6] |= 1ull << (idx & 63);
  }
  void unblock_bit(std::size_t idx) {
    blocked_[idx >> 6] &= ~(1ull << (idx & 63));
  }

  CsdConfig config_;
  /// occupancy_[c * (positions-1) + s] = route occupying hop segment s of
  /// channel c, or kNoRoute.
  std::vector<RouteId> occupancy_;
  /// dead_[same index] = the segment is defective and unroutable.
  std::vector<bool> dead_;
  /// Bitwords over the same index space: bit set = claimed or dead. The
  /// priority encoder's span scan tests 64 segments per word instead of
  /// one RouteId per probe.
  std::vector<std::uint64_t> blocked_;
  /// Claimed-segment count per channel; makes used_channels() O(channels)
  /// and claimed_segments() O(1) instead of scans over all segments.
  std::vector<std::uint32_t> claimed_per_channel_;
  std::size_t claimed_total_ = 0;
  std::vector<Route> routes_;        // slot reuse via free list
  std::vector<RouteId> free_slots_;
  std::size_t active_routes_ = 0;
  Trace* trace_;
  std::uint64_t now_ = 0;  // advanced by handshake latencies for tracing
  std::uint64_t version_ = 0;
  // Lifetime handshake counters (see route_requests()).
  std::uint64_t requests_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t rejects_ = 0;
  // Cumulative fault-path accounting across kill_segment calls.
  std::uint64_t segments_killed_ = 0;
  std::uint64_t kill_reroutes_ = 0;
  std::uint64_t kill_drops_ = 0;
};

}  // namespace vlsip::csd
