// Baseline: the non-segmented global interconnection network of the basic
// adaptive processor (paper §2.6: "The global interconnection network is
// suitable only for a small number of physical objects").
//
// Every established communication consumes a whole end-to-end channel, so
// the channel count — and therefore wire area — grows linearly with the
// number of concurrently chained objects. This is the comparator the
// dynamic CSD network is evaluated against in bench/ablation_global_vs_csd.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vlsip::csd {

class GlobalNetwork {
 public:
  /// `positions`: objects on the array; `channels`: full-length wires.
  GlobalNetwork(std::uint32_t positions, std::uint32_t channels);

  std::uint32_t positions() const { return positions_; }
  std::uint32_t channel_count() const { return channels_; }

  /// Claims a whole channel for source->sink; returns the channel or
  /// nullopt when all channels are busy. Endpoint positions are ignored
  /// for allocation (that is the point of the baseline) but validated.
  std::optional<std::uint32_t> establish(std::uint32_t source,
                                         std::uint32_t sink);

  void release(std::uint32_t channel);

  std::uint32_t used_channels() const;

  /// Wire-area proxy: every channel spans the full array, so cost is
  /// channels * (positions - 1) segment-lengths, claimed or not.
  std::size_t wire_segments() const;

 private:
  std::uint32_t positions_;
  std::uint32_t channels_;
  std::vector<bool> busy_;
};

}  // namespace vlsip::csd
