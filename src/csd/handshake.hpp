// Cycle-accurate simulation of the fig. 2 routing handshake.
//
// DynamicCsdNetwork::establish() resolves a route combinationally and
// charges the analytic latency; this engine instead steps the protocol
// cycle by cycle — request signals propagating hop by hop through the
// chained request network, the sink's priority encoder sampling arrived
// requests against channel occupancy, the grant being written into the
// memory cell (unchaining the span), and the acknowledgement travelling
// back — so that *contention* between in-flight handshakes is modelled:
// two overlapping requests that encode on the same cycle are serialised
// by the encoders, and a span claimed mid-flight causes a rejection that
// the analytic model cannot see.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "csd/dynamic_csd.hpp"

namespace vlsip::csd {

enum class HandshakePhase : std::uint8_t {
  kRequestPropagate,  // request flows source -> sink, 1 hop/cycle
  kEncode,            // sink priority encoder samples channels
  kGrant,             // grant written to the memory cell; span unchains
  kAckPropagate,      // ack flows sink -> source, 1 hop/cycle
  kDone,
  kRejected,
};

struct HandshakeRequest {
  std::uint32_t id = 0;
  Position source = 0;
  Position sink = 0;
  HandshakePhase phase = HandshakePhase::kRequestPropagate;
  /// Hops still to travel in the current propagation phase.
  Position hops_left = 0;
  /// Granted route (valid once phase >= kGrant).
  std::optional<RouteId> route;
  std::uint64_t issued_at = 0;
  std::uint64_t finished_at = 0;

  bool terminal() const {
    return phase == HandshakePhase::kDone ||
           phase == HandshakePhase::kRejected;
  }
};

/// Steps concurrent handshakes against a shared DynamicCsdNetwork.
class HandshakeSimulator {
 public:
  explicit HandshakeSimulator(DynamicCsdNetwork& network);

  /// Issues a new routing request at the current cycle; returns its id.
  std::uint32_t issue(Position source, Position sink);

  /// Advances one cycle. Returns the number of requests that reached a
  /// terminal state this cycle.
  std::size_t step();

  /// Runs until every request is terminal or `max_cycles` pass; returns
  /// true if all terminal.
  bool run_until_quiet(std::uint64_t max_cycles);

  std::uint64_t now() const { return now_; }
  const HandshakeRequest& request(std::uint32_t id) const;
  const std::vector<HandshakeRequest>& requests() const { return reqs_; }

  std::size_t granted() const { return granted_; }
  std::size_t rejected() const { return rejected_; }
  bool all_terminal() const { return active_.empty(); }

  /// Checkpoint codec: in-flight handshakes resume mid-propagation.
  /// The network reference is not serialized — restore the network
  /// first, then this.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  DynamicCsdNetwork& network_;
  std::vector<HandshakeRequest> reqs_;
  /// In-flight request ids in issue order (the deterministic encoder
  /// serialisation). Terminal requests are compacted out, so a step
  /// costs O(in-flight), not O(ever-issued).
  std::vector<std::uint32_t> active_;
  /// Per-step terminal flags, parallel to active_. Scratch only (never
  /// serialized): step() records which entries finished this cycle and
  /// the SIMD compaction pass scans it 16-32 bytes per compare.
  std::vector<std::uint8_t> terminal_scratch_;
  std::size_t granted_ = 0;
  std::size_t rejected_ = 0;
  std::uint64_t now_ = 0;
};

}  // namespace vlsip::csd
