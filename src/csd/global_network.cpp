#include "csd/global_network.hpp"

#include "common/require.hpp"

namespace vlsip::csd {

GlobalNetwork::GlobalNetwork(std::uint32_t positions, std::uint32_t channels)
    : positions_(positions), channels_(channels), busy_(channels, false) {
  VLSIP_REQUIRE(positions >= 2, "need at least two positions");
  VLSIP_REQUIRE(channels >= 1, "need at least one channel");
}

std::optional<std::uint32_t> GlobalNetwork::establish(std::uint32_t source,
                                                      std::uint32_t sink) {
  VLSIP_REQUIRE(source < positions_ && sink < positions_,
                "endpoint out of range");
  VLSIP_REQUIRE(source != sink, "source and sink must differ");
  for (std::uint32_t c = 0; c < channels_; ++c) {
    if (!busy_[c]) {
      busy_[c] = true;
      return c;
    }
  }
  return std::nullopt;
}

void GlobalNetwork::release(std::uint32_t channel) {
  VLSIP_REQUIRE(channel < channels_, "channel out of range");
  VLSIP_REQUIRE(busy_[channel], "releasing an idle channel");
  busy_[channel] = false;
}

std::uint32_t GlobalNetwork::used_channels() const {
  std::uint32_t n = 0;
  for (bool b : busy_) {
    if (b) ++n;
  }
  return n;
}

std::size_t GlobalNetwork::wire_segments() const {
  return static_cast<std::size_t>(channels_) * (positions_ - 1);
}

}  // namespace vlsip::csd
