// Application datapaths: the object library plus the global configuration
// stream, and a builder for constructing them programmatically.
//
// The adaptive processor has no instruction-set architecture; an
// application *is* a set of logical objects (the library) plus the global
// configuration stream that chains them (§2.3). Examples and tests build
// datapaths with DatapathBuilder rather than hand-writing IDs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/config_stream.hpp"
#include "arch/object.hpp"

namespace vlsip::arch {

/// A complete application datapath description.
struct Program {
  /// Logical-object library, indexed by ObjectId (dense, id == index).
  std::vector<LogicalObject> library;
  /// Global configuration data stream (dependencies only).
  ConfigStream stream;
  /// External input ports: name -> object that receives injected tokens.
  std::map<std::string, ObjectId> inputs;
  /// Output ports: name -> sink object whose consumed values are results.
  std::map<std::string, ObjectId> outputs;

  const LogicalObject& object(ObjectId id) const;
  std::size_t object_count() const { return library.size(); }
};

/// Fluent builder for Programs. Every call creates one logical object and
/// (for ops with sources) one configuration-stream element.
///
///   DatapathBuilder b;
///   auto x = b.input("x");
///   auto one = b.constant_i(1);
///   auto t = b.op(Opcode::kIAdd, x, one, "t");
///   b.output("z", t);
///   Program p = std::move(b).build();
class DatapathBuilder {
 public:
  /// External input: a buffer object that the runtime injects tokens into.
  ObjectId input(const std::string& name);

  /// Constant-producing object (re-emits per activation).
  ObjectId constant_i(std::int64_t v, const std::string& name = "");
  ObjectId constant_f(double v, const std::string& name = "");

  /// Unary operator.
  ObjectId op(Opcode opcode, ObjectId a, const std::string& name = "");
  /// Binary operator.
  ObjectId op(Opcode opcode, ObjectId a, ObjectId b,
              const std::string& name = "");
  /// Ternary operator (Select).
  ObjectId op(Opcode opcode, ObjectId a, ObjectId b, ObjectId c,
              const std::string& name = "");

  /// Names `v` as an output; creates the sink object.
  ObjectId output(const std::string& name, ObjectId v);

  /// Unit delay (z^-1): a buffer fed by `source` that starts with one
  /// initial token, so its first output is the initial value and every
  /// later output is the previous input (FIR delay lines, §2.1's
  /// "initial data").
  ObjectId delay_i(ObjectId source, std::int64_t initial,
                   const std::string& name = "");
  ObjectId delay_f(ObjectId source, double initial,
                   const std::string& name = "");

  /// Placeholder buffer whose source is bound later with bind() — the
  /// only way to build feedback loops (accumulators / reductions). The
  /// placeholder starts with one initial token (default 0) so the loop
  /// is not deadlocked at start; set the value with set_initial_*.
  ObjectId placeholder(const std::string& name = "");

  /// Closes a feedback loop: `source` feeds the placeholder.
  void bind(ObjectId placeholder_id, ObjectId source);

  /// Overrides an object's initial-token value (placeholders and delay
  /// buffers).
  void set_initial_i(ObjectId obj, std::int64_t v);
  void set_initial_f(ObjectId obj, double v);

  /// Number of objects created so far.
  std::size_t size() const { return library_.size(); }

  Program build() &&;

 private:
  ObjectId add_object(Opcode opcode, Word immediate, std::string name);
  void add_element(ObjectId sink, std::vector<ObjectId> sources);
  void check_id(ObjectId id) const;

  std::vector<LogicalObject> library_;
  ConfigStream stream_;
  std::map<std::string, ObjectId> inputs_;
  std::map<std::string, ObjectId> outputs_;
  std::vector<ObjectId> unbound_placeholders_;
};

/// Structural validation of a Program: dense ids, stream references in
/// range, element operand slots within each sink's opcode arity, port
/// bindings resolvable (inputs are buffer objects, outputs are sinks).
/// Returns a list of human-readable problems (empty = valid). The
/// builder produces valid programs by construction; hand-written or
/// loaded object code should be checked before execution (the vlsipc
/// tool does). Configuration-only studies (raw streams over generic
/// buffers) may legitimately skip it.
std::vector<std::string> validate_program(const Program& program);

/// Workload generators used by benches and property tests.
///
/// Random datapath with the paper's Fig. 3 structure: each element's
/// source is the *preceding sink ID plus an offset*, and its sink is the
/// source plus another offset; offset magnitudes are controlled by
/// `locality` (1 = offsets ~0, adjacent chain; 0 = effectively uniform —
/// the paper's "random datapath"). `n_sources` selects the one-source
/// model the paper evaluates (default) or the two-source model it
/// mentions (the second source is drawn at a locality offset from the
/// first).
ConfigStream random_config_stream(std::size_t n_objects,
                                  std::size_t n_elements, double locality,
                                  std::uint64_t seed, int n_sources = 1);

/// A linear chain a0 -> a1 -> ... -> a(n-1) (maximal locality).
ConfigStream chain_config_stream(std::size_t n_objects);

/// Builds a runnable linear pipeline Program of `stages` arithmetic
/// stages: out = (((in + 1) * 3) - 2)... deterministic and checkable.
Program linear_pipeline_program(int stages);

/// Builds the paper's Fig. 7(a) example: if (x > y) z = x + 1; else
/// z = y + 2; as a speculative dataflow datapath (both arms execute,
/// gates forward the taken arm to the output buffer).
Program conditional_example_program();

/// A FIR filter datapath over `taps` coefficients (streaming example).
Program fir_program(const std::vector<double>& coefficients);

}  // namespace vlsip::arch
