// The object model of the adaptive processor (paper §2.1).
//
// A *physical object* is a processing element on the array. *Local
// configuration data* tells a physical object what operation to perform.
// The pair (initial data, local configuration data) is a *logical object*;
// a logical object bound onto a physical object is simply an *object*.
// Logical objects move across the physical-object array via stack shifts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace vlsip::arch {

/// Identifier of a logical object. IDs index the application's object
/// library; the global configuration stream references objects by ID only
/// (the stream "simply represents the dependencies", §2.7).
using ObjectId = std::uint32_t;

/// Sentinel for "no object".
inline constexpr ObjectId kNoObject = 0xFFFFFFFFu;

/// A 64-bit datapath word. The adaptive processor is untyped at the
/// transport level; each operator interprets the bits it receives.
union Word {
  std::uint64_t u;
  std::int64_t i;
  double f;
};

inline Word make_word_u(std::uint64_t v) { Word w; w.u = v; return w; }
inline Word make_word_i(std::int64_t v) { Word w; w.i = v; return w; }
inline Word make_word_f(double v) { Word w; w.f = v; return w; }

/// Operation performed by a configured object. The set mirrors the
/// execution fabrics the cost model budgets for (Table 1: 64-bit fMul,
/// fAdd, fDiv, iMul, iALU/shift, iDiv) plus the transport/control objects
/// the architecture needs (constants, buffers, compares, selects,
/// loads/stores against memory blocks).
enum class Opcode : std::uint8_t {
  kNop,
  // Integer ALU fabric
  kIAdd,
  kISub,
  kIMul,
  kIDiv,
  kIRem,
  kIShl,
  kIShr,
  kIAnd,
  kIOr,
  kIXor,
  kINeg,
  // Floating-point fabric
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFNeg,
  // Comparison / control (produce 0/1 words)
  kCmpGt,
  kCmpLt,
  kCmpEq,
  kSelect,   // src0 ? src1 : src2 — modelled as 2-phase (cond latched first)
  kGate,     // forwards src1 iff src0 != 0 (conditional send, fig. 7)
  kGateNot,  // forwards src1 iff src0 == 0
  kMerge,    // forwards whichever of src0/src1 arrives (gated arms join)
  // Data movement / sequencing
  kConst,    // emits its immediate once per activation
  kBuff,     // single-entry buffer / identity (the "buff" of fig. 7a)
  kIota,     // hardware loop (ALU-II/sequencer, Table 2): consumes a
             // count N and emits the stream 0, 1, ..., N-1
  kLoad,     // loads from the memory object at address src0
  kStore,    // stores src1 to the memory object at address src0
  kSink,     // consumes a value and records it as a datapath output
};

/// Functional class of an opcode; decides which execution fabric is used
/// and therefore which area entry of Table 1/2 the object occupies.
enum class OpClass : std::uint8_t {
  kNone,     // nop
  kIntAlu,   // iALU/shift fabric
  kIntMul,   // iMul fabric
  kIntDiv,   // iDiv fabric
  kFloat,    // fMul/fAdd fabric
  kFloatDiv, // fDiv fabric
  kMemory,   // memory-block access
  kTransport // const/buff/sink/gates — register-only
};

OpClass op_class(Opcode op);

/// Number of input operands the opcode consumes (0..3).
int op_arity(Opcode op);

/// Default execution latency in cycles once all operands are present.
/// Chosen to reflect the relative depth of each fabric (divides are long,
/// transport is single-cycle); the exact values are simulator parameters,
/// not paper claims.
int op_latency(Opcode op);

/// True if the opcode produces an output token.
bool op_produces(Opcode op);

const char* op_name(Opcode op);

/// Local configuration data (§2.1): everything a physical object needs to
/// perform its role in the datapath.
struct LocalConfig {
  Opcode opcode = Opcode::kNop;
  /// Immediate operand for kConst (and available to others).
  Word immediate{0};
  /// Optional latency override, e.g. to model a slower library variant
  /// ("a library using a small number of metal layers", §2.6.2).
  std::optional<int> latency_override;
  /// If set, the object starts with one pre-loaded output token carrying
  /// the logical object's initial data. This turns a kBuff into a true
  /// unit delay (z^-1), which streaming datapaths (e.g. FIR delay lines)
  /// need; it is the dataflow reading of "initial data" in §2.1.
  bool initial_token = false;

  int latency() const {
    return latency_override ? *latency_override : op_latency(opcode);
  }
};

/// A logical object: local configuration plus initial data. Logical
/// objects live in the library (in memory blocks) and are loaded into
/// physical objects on demand (object caching, §2.4–2.5).
struct LogicalObject {
  ObjectId id = kNoObject;
  LocalConfig config;
  /// Initial data; e.g. an accumulator's starting value.
  Word initial{0};
  /// Debug name for traces and examples.
  std::string name;
};

}  // namespace vlsip::arch
