// Global configuration data (paper §2.1, §2.4).
//
// An application datapath is configured by a *global configuration data
// stream*: a sequence of elements, each naming a sink object ID and its
// source object IDs. The stream encodes nothing but dependencies — "in a
// global configuration data stream, the dependency is represented by the
// ID". The adaptive-processor pipeline walks this stream to request,
// acquire and chain objects.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/object.hpp"

namespace vlsip::arch {

/// Maximum number of source operands an element can name. The paper's
/// functional CSD evaluation uses a one-source model and mentions a
/// two-source model; Select needs three.
inline constexpr int kMaxSources = 3;

/// One element of the global configuration data stream: "chain sink to
/// these sources". Unused source slots hold kNoObject.
struct ConfigElement {
  ObjectId sink = kNoObject;
  std::array<ObjectId, kMaxSources> sources{kNoObject, kNoObject, kNoObject};

  int source_count() const;

  /// All object IDs the element references (sink first, then sources),
  /// in the order the pipeline requests them.
  std::vector<ObjectId> referenced() const;

  bool operator==(const ConfigElement&) const = default;
};

/// The global configuration data stream for one application datapath.
class ConfigStream {
 public:
  ConfigStream() = default;
  explicit ConfigStream(std::vector<ConfigElement> elements)
      : elements_(std::move(elements)) {}

  void push(ConfigElement e) { elements_.push_back(e); }

  const std::vector<ConfigElement>& elements() const { return elements_; }
  std::size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const ConfigElement& operator[](std::size_t i) const {
    return elements_.at(i);
  }

  /// Flattened object-ID reference trace (every sink and source in stream
  /// order). This is the trace whose stack distances decide object-cache
  /// behaviour (§2.4).
  std::vector<ObjectId> reference_trace() const;

  /// Distinct object IDs referenced, in first-appearance order.
  std::vector<ObjectId> distinct_objects() const;

  std::string render() const;

 private:
  std::vector<ConfigElement> elements_;
};

}  // namespace vlsip::arch
