// Dependency-distance (stack-distance) analysis (paper §2.4).
//
// The object space is a stack: a reference to an object at stack distance
// d hits iff d <= C (the array capacity). Stack distance over an LRU
// stack equals the classic Mattson stack distance, so one pass over the
// reference trace yields the hit rate for *every* capacity at once.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "arch/config_stream.hpp"
#include "arch/object.hpp"

namespace vlsip::arch {

/// Distance assigned to the first (cold) reference of an object.
inline constexpr std::size_t kColdDistance =
    std::numeric_limits<std::size_t>::max();

/// Per-reference stack distances of an object-ID trace under LRU stack
/// semantics. Distance is 1-based: a re-reference to the top of the stack
/// has distance 1. Cold references get kColdDistance.
std::vector<std::size_t> stack_distances(const std::vector<ObjectId>& trace);

/// Hit rate of the trace on an object space of capacity `capacity`
/// (fraction of references with distance <= capacity). Cold references
/// count as misses. Returns 0 for an empty trace.
double hit_rate(const std::vector<ObjectId>& trace, std::size_t capacity);

/// Hit counts for all capacities in one Mattson pass: result[c] is the
/// number of hits with capacity c (result[0] == 0; size = max observed
/// distance + 1, clipped to `max_capacity + 1`).
std::vector<std::size_t> hits_by_capacity(const std::vector<ObjectId>& trace,
                                          std::size_t max_capacity);

/// Summary of a configuration stream's dependency behaviour.
struct DependencyProfile {
  std::size_t references = 0;      // total object references
  std::size_t distinct = 0;        // working-set size
  std::size_t cold_misses = 0;
  std::size_t max_distance = 0;    // max finite stack distance
  double mean_distance = 0.0;      // over finite distances
  /// Smallest capacity C such that every warm reference hits — i.e. the
  /// minimum array size for which the datapath never re-misses (§2.4:
  /// "the stack distance has to be less than or equal to C").
  std::size_t min_capacity_for_no_warm_miss = 0;
};

DependencyProfile analyze_dependencies(const ConfigStream& stream);

/// Denning working-set analysis [paper ref 9]: W(t, window) = number of
/// distinct objects referenced among the `window` references ending at
/// position t. result[t] is that size (the window is clipped at the
/// start of the trace). The WSRF (40 registers) is sized against this
/// curve: it holds the working set of the configuration stream.
std::vector<std::size_t> working_set_sizes(const std::vector<ObjectId>& trace,
                                           std::size_t window);

/// Mean working-set size over the trace for one window.
double mean_working_set(const std::vector<ObjectId>& trace,
                        std::size_t window);

/// Smallest window at which the mean working set reaches `fraction` of
/// the trace's total distinct objects (a knee-finding helper for WSRF
/// sizing). Returns trace.size() if never reached.
std::size_t window_for_coverage(const std::vector<ObjectId>& trace,
                                double fraction);

}  // namespace vlsip::arch
