#include "arch/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <list>
#include <unordered_map>
#include <vector>

#include "arch/dependency.hpp"
#include "common/require.hpp"

namespace vlsip::arch {

namespace {

/// Incremental LRU stack for cost probes.
class LruStack {
 public:
  /// 1-based depth of `id`, or SIZE_MAX when absent.
  std::size_t depth(ObjectId id) const {
    const auto it = where_.find(id);
    if (it == where_.end()) return std::numeric_limits<std::size_t>::max();
    std::size_t d = 1;
    for (auto walk = order_.begin(); walk != it->second; ++walk) ++d;
    return d;
  }

  void touch(ObjectId id) {
    const auto it = where_.find(id);
    if (it != where_.end()) order_.erase(it->second);
    order_.push_front(id);
    where_[id] = order_.begin();
  }

 private:
  std::list<ObjectId> order_;
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> where_;
};

}  // namespace

double mean_stack_distance(const ConfigStream& stream) {
  const auto profile = analyze_dependencies(stream);
  return profile.mean_distance;
}

ConfigStream optimize_stream_order(const ConfigStream& stream,
                                   OptimizeReport* report) {
  const auto& elements = stream.elements();
  const std::size_t n = elements.size();

  // definer[x] = index of the element whose sink is x (first one wins —
  // later re-chainings of the same sink depend on the first definition
  // being placed).
  std::unordered_map<ObjectId, std::size_t> definer;
  for (std::size_t i = 0; i < n; ++i) {
    definer.emplace(elements[i].sink, i);
  }

  // deps[i] = defining elements of i's sources (causality edges).
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> blocked_by(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto src : elements[i].sources) {
      if (src == kNoObject) continue;
      const auto it = definer.find(src);
      if (it == definer.end() || it->second == i) continue;
      // Only a backward-pointing edge constrains (an element may consume
      // an object defined later in the original stream — then the
      // original order already violates "producer first" and we keep
      // the freedom).
      if (it->second < i) {
        dependents[it->second].push_back(i);
        ++blocked_by[i];
      }
    }
  }
  // Same-sink elements stay ordered (re-chaining is a replacement).
  std::unordered_map<ObjectId, std::size_t> last_with_sink;
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = last_with_sink.find(elements[i].sink);
    if (it != last_with_sink.end()) {
      dependents[it->second].push_back(i);
      ++blocked_by[i];
    }
    last_with_sink[elements[i].sink] = i;
  }

  LruStack lru;
  std::vector<bool> scheduled(n, false);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (blocked_by[i] == 0) ready.push_back(i);
  }

  ConfigStream out;
  const auto cold = static_cast<double>(n) * 8.0 + 64.0;  // miss cost
  while (out.size() < n) {
    VLSIP_INVARIANT(!ready.empty(), "scheduler wedged (cycle in deps)");
    // Pick the ready element with the cheapest (hottest) references;
    // ties keep original order because `ready` is maintained sorted.
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_pos = 0;
    for (std::size_t p = 0; p < ready.size(); ++p) {
      const auto& e = elements[ready[p]];
      double cost = 0.0;
      for (const auto id : e.referenced()) {
        const auto d = lru.depth(id);
        cost += d == std::numeric_limits<std::size_t>::max()
                    ? cold
                    : static_cast<double>(d);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_pos = p;
      }
    }
    const std::size_t chosen = ready[best_pos];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_pos));
    scheduled[chosen] = true;
    for (const auto id : elements[chosen].referenced()) lru.touch(id);
    out.push(elements[chosen]);
    for (const auto dep : dependents[chosen]) {
      if (--blocked_by[dep] == 0) {
        // Keep `ready` sorted by original index for stable ties.
        ready.insert(std::upper_bound(ready.begin(), ready.end(), dep),
                     dep);
      }
    }
  }

  if (report != nullptr) {
    const auto before = analyze_dependencies(stream);
    const auto after = analyze_dependencies(out);
    report->original_mean_distance = before.mean_distance;
    report->optimized_mean_distance = after.mean_distance;
    report->original_max_distance = before.max_distance;
    report->optimized_max_distance = after.max_distance;
  }
  return out;
}

}  // namespace vlsip::arch
