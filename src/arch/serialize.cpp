#include "arch/serialize.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/require.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::arch {

namespace {

constexpr const char* kMagic = "vlsip-object-code v1";

std::string hex_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex(const std::string& s, int line) {
  std::uint64_t v = 0;
  const auto rc = std::sscanf(s.c_str(), "%" SCNx64, &v);
  VLSIP_REQUIRE(rc == 1, "line " + std::to_string(line) +
                             ": bad hex literal '" + s + "'");
  return v;
}

[[noreturn]] void fail(int line, const std::string& why) {
  throw vlsip::PreconditionError("object-code line " + std::to_string(line) +
                                 ": " + why);
}

}  // namespace

Opcode opcode_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(Opcode::kSink); ++i) {
    const auto op = static_cast<Opcode>(i);
    if (name == op_name(op)) return op;
  }
  VLSIP_REQUIRE(false, "unknown opcode name: " + name);
  return Opcode::kNop;  // unreachable
}

std::string to_text(const Program& program) {
  std::ostringstream out;
  out << kMagic << "\n";
  for (const auto& obj : program.library) {
    out << "object " << obj.id << " " << op_name(obj.config.opcode)
        << " imm=" << hex_u64(obj.config.immediate.u) << " init=";
    if (obj.config.initial_token) {
      out << hex_u64(obj.initial.u);
    } else {
      out << "-";
    }
    out << " latency=";
    if (obj.config.latency_override) {
      out << *obj.config.latency_override;
    } else {
      out << "-";
    }
    out << " " << (obj.name.empty() ? "_" : obj.name) << "\n";
  }
  for (const auto& e : program.stream.elements()) {
    out << "element " << e.sink;
    for (const auto s : e.sources) {
      out << " ";
      if (s == kNoObject) {
        out << "-";
      } else {
        out << s;
      }
    }
    out << "\n";
  }
  for (const auto& [name, id] : program.inputs) {
    out << "input " << name << " " << id << "\n";
  }
  for (const auto& [name, id] : program.outputs) {
    out << "output " << name << " " << id << "\n";
  }
  return out.str();
}

Program from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  VLSIP_REQUIRE(std::getline(in, line) && line == kMagic,
                "missing object-code magic header");
  ++line_no;

  Program program;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "object") {
      std::uint32_t id = 0;
      std::string opname, imm, init, latency, name;
      ls >> id >> opname >> imm >> init >> latency;
      std::getline(ls, name);
      if (!name.empty() && name[0] == ' ') name.erase(0, 1);
      if (!ls && name.empty()) fail(line_no, "truncated object record");
      if (id != program.library.size()) {
        fail(line_no, "object ids must be dense and ordered");
      }
      LogicalObject obj;
      obj.id = id;
      obj.config.opcode = opcode_from_name(opname);
      if (imm.rfind("imm=", 0) != 0 || init.rfind("init=", 0) != 0 ||
          latency.rfind("latency=", 0) != 0) {
        fail(line_no, "malformed object fields");
      }
      obj.config.immediate.u = parse_hex(imm.substr(4), line_no);
      const auto init_val = init.substr(5);
      if (init_val != "-") {
        obj.config.initial_token = true;
        obj.initial.u = parse_hex(init_val, line_no);
      }
      const auto lat_val = latency.substr(8);
      if (lat_val != "-") {
        obj.config.latency_override = std::stoi(lat_val);
      }
      obj.name = name == "_" ? "" : name;
      program.library.push_back(std::move(obj));
    } else if (kind == "element") {
      ConfigElement e;
      std::string sink;
      ls >> sink;
      if (sink.empty()) fail(line_no, "element without sink");
      e.sink = static_cast<ObjectId>(std::stoul(sink));
      for (int s = 0; s < kMaxSources; ++s) {
        std::string src;
        ls >> src;
        if (src.empty()) fail(line_no, "element with missing source slot");
        if (src != "-") {
          e.sources[static_cast<std::size_t>(s)] =
              static_cast<ObjectId>(std::stoul(src));
        }
      }
      program.stream.push(e);
    } else if (kind == "input" || kind == "output") {
      std::string name;
      std::uint32_t id = 0;
      ls >> name >> id;
      if (name.empty()) fail(line_no, "port without a name");
      if (id >= program.library.size()) {
        fail(line_no, "port references unknown object");
      }
      if (kind == "input") {
        program.inputs[name] = id;
      } else {
        program.outputs[name] = id;
      }
    } else {
      fail(line_no, "unknown record kind '" + kind + "'");
    }
  }
  // Validate stream references.
  for (const auto& e : program.stream.elements()) {
    for (const auto id : e.referenced()) {
      VLSIP_REQUIRE(id < program.library.size(),
                    "stream references unknown object");
    }
  }
  return program;
}

namespace {

constexpr std::uint64_t kNoField = 0xFFFFu;

std::uint64_t pack_id(ObjectId id) {
  if (id == kNoObject) return kNoField;
  VLSIP_REQUIRE(id < kNoField, "object id too large for stream encoding");
  return id;
}

ObjectId unpack_id(std::uint64_t field) {
  return field == kNoField ? kNoObject : static_cast<ObjectId>(field);
}

}  // namespace

std::uint64_t encode_element(const ConfigElement& element) {
  return (pack_id(element.sink) << 48) |
         (pack_id(element.sources[0]) << 32) |
         (pack_id(element.sources[1]) << 16) |
         pack_id(element.sources[2]);
}

ConfigElement decode_element(std::uint64_t word) {
  ConfigElement e;
  e.sink = unpack_id((word >> 48) & 0xFFFFu);
  e.sources[0] = unpack_id((word >> 32) & 0xFFFFu);
  e.sources[1] = unpack_id((word >> 16) & 0xFFFFu);
  e.sources[2] = unpack_id(word & 0xFFFFu);
  return e;
}

std::vector<std::uint64_t> encode_stream(const ConfigStream& stream) {
  std::vector<std::uint64_t> words;
  words.reserve(stream.size());
  for (const auto& e : stream.elements()) {
    words.push_back(encode_element(e));
  }
  return words;
}

ConfigStream decode_stream(const std::vector<std::uint64_t>& words) {
  ConfigStream stream;
  for (const auto w : words) stream.push(decode_element(w));
  return stream;
}

void save_object(snapshot::Writer& w, const LogicalObject& object) {
  w.u32(object.id);
  w.u8(static_cast<std::uint8_t>(object.config.opcode));
  w.u64(object.config.immediate.u);
  w.b(object.config.latency_override.has_value());
  w.i32(object.config.latency_override.value_or(0));
  w.b(object.config.initial_token);
  w.u64(object.initial.u);
  w.str(object.name);
}

LogicalObject restore_object(snapshot::Reader& r) {
  LogicalObject obj;
  obj.id = r.u32();
  obj.config.opcode = static_cast<Opcode>(r.u8());
  obj.config.immediate = make_word_u(r.u64());
  const bool has_latency = r.b();
  const std::int32_t latency = r.i32();
  if (has_latency) obj.config.latency_override = latency;
  obj.config.initial_token = r.b();
  obj.initial = make_word_u(r.u64());
  obj.name = r.str();
  return obj;
}

void save_program(snapshot::Writer& w, const Program& program) {
  w.section("arch.program");
  w.u64(program.library.size());
  for (const auto& obj : program.library) save_object(w, obj);
  w.vec_u64(encode_stream(program.stream));
  w.u64(program.inputs.size());
  for (const auto& [name, id] : program.inputs) {
    w.str(name);
    w.u32(id);
  }
  w.u64(program.outputs.size());
  for (const auto& [name, id] : program.outputs) {
    w.str(name);
    w.u32(id);
  }
}

Program restore_program(snapshot::Reader& r) {
  r.section("arch.program");
  Program program;
  const std::uint64_t n_objects = r.count(1);
  program.library.reserve(static_cast<std::size_t>(n_objects));
  for (std::uint64_t i = 0; i < n_objects; ++i) {
    program.library.push_back(restore_object(r));
  }
  program.stream = decode_stream(r.vec_u64());
  const std::uint64_t n_inputs = r.count(1);
  for (std::uint64_t i = 0; i < n_inputs; ++i) {
    const std::string name = r.str();
    program.inputs[name] = r.u32();
  }
  const std::uint64_t n_outputs = r.count(1);
  for (std::uint64_t i = 0; i < n_outputs; ++i) {
    const std::string name = r.str();
    program.outputs[name] = r.u32();
  }
  return program;
}

}  // namespace vlsip::arch
