// Configuration-stream scheduling (§2.7: "The dependency distance is a
// key for efficient processing. We need to take care that the distance
// be no larger than the capacity to avoid making an object cache miss").
//
// The global configuration stream's *order* decides every stack
// distance, so the compiler can trade instruction-free simplicity for a
// scheduling pass: reorder elements — respecting configuration causality
// (an element is scheduled only after the elements that define its
// sources) — to keep references close together on the LRU stack.
//
// The optimizer is a greedy list scheduler over a simulated LRU stack:
// among ready elements it picks the one whose references sit highest in
// the current stack (cold references cost most), which clusters chains
// into locality bursts.
#pragma once

#include <cstddef>

#include "arch/config_stream.hpp"

namespace vlsip::arch {

struct OptimizeReport {
  double original_mean_distance = 0.0;
  double optimized_mean_distance = 0.0;
  std::size_t original_max_distance = 0;
  std::size_t optimized_max_distance = 0;
};

/// Reorders `stream` to minimise dependency distances. Preserves
/// causality: element j consuming object X stays after the element
/// defining X (sink == X), if one exists. Elements with equal cost keep
/// their original relative order (stable), so the result is
/// deterministic.
ConfigStream optimize_stream_order(const ConfigStream& stream,
                                   OptimizeReport* report = nullptr);

/// Mean finite stack distance of a stream's reference trace (the
/// optimizer's objective; exposed for tests and benches).
double mean_stack_distance(const ConfigStream& stream);

}  // namespace vlsip::arch
