#include "arch/config_stream.hpp"

#include <sstream>
#include <unordered_set>

namespace vlsip::arch {

int ConfigElement::source_count() const {
  int n = 0;
  for (auto s : sources) {
    if (s != kNoObject) ++n;
  }
  return n;
}

std::vector<ObjectId> ConfigElement::referenced() const {
  std::vector<ObjectId> ids;
  if (sink != kNoObject) ids.push_back(sink);
  for (auto s : sources) {
    if (s != kNoObject) ids.push_back(s);
  }
  return ids;
}

std::vector<ObjectId> ConfigStream::reference_trace() const {
  std::vector<ObjectId> trace;
  for (const auto& e : elements_) {
    const auto refs = e.referenced();
    trace.insert(trace.end(), refs.begin(), refs.end());
  }
  return trace;
}

std::vector<ObjectId> ConfigStream::distinct_objects() const {
  std::vector<ObjectId> out;
  std::unordered_set<ObjectId> seen;
  for (auto id : reference_trace()) {
    if (seen.insert(id).second) out.push_back(id);
  }
  return out;
}

std::string ConfigStream::render() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    out << i << ": sink=" << e.sink << " <-";
    for (auto s : e.sources) {
      if (s != kNoObject) out << " " << s;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace vlsip::arch
