#include "arch/datapath.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vlsip::arch {

const LogicalObject& Program::object(ObjectId id) const {
  VLSIP_REQUIRE(id < library.size(), "object id out of range");
  return library[id];
}

ObjectId DatapathBuilder::add_object(Opcode opcode, Word immediate,
                                     std::string name) {
  LogicalObject obj;
  obj.id = static_cast<ObjectId>(library_.size());
  obj.config.opcode = opcode;
  obj.config.immediate = immediate;
  obj.name = name.empty() ? std::string(op_name(opcode)) + "#" +
                                std::to_string(obj.id)
                          : std::move(name);
  library_.push_back(obj);
  return obj.id;
}

void DatapathBuilder::add_element(ObjectId sink,
                                  std::vector<ObjectId> sources) {
  VLSIP_REQUIRE(sources.size() <= static_cast<std::size_t>(kMaxSources),
                "too many sources for one configuration element");
  ConfigElement e;
  e.sink = sink;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    e.sources[i] = sources[i];
  }
  stream_.push(e);
}

void DatapathBuilder::check_id(ObjectId id) const {
  VLSIP_REQUIRE(id < library_.size(),
                "operand refers to an object this builder did not create");
}

ObjectId DatapathBuilder::input(const std::string& name) {
  VLSIP_REQUIRE(!name.empty(), "input needs a name");
  VLSIP_REQUIRE(!inputs_.contains(name), "duplicate input name: " + name);
  const ObjectId id = add_object(Opcode::kBuff, make_word_u(0), name);
  // Inputs appear in the stream as source-less elements so the pipeline
  // still requests (and thus places) them.
  add_element(id, {});
  inputs_[name] = id;
  return id;
}

ObjectId DatapathBuilder::constant_i(std::int64_t v, const std::string& name) {
  const ObjectId id = add_object(Opcode::kConst, make_word_i(v), name);
  add_element(id, {});
  return id;
}

ObjectId DatapathBuilder::constant_f(double v, const std::string& name) {
  const ObjectId id = add_object(Opcode::kConst, make_word_f(v), name);
  add_element(id, {});
  return id;
}

ObjectId DatapathBuilder::op(Opcode opcode, ObjectId a,
                             const std::string& name) {
  VLSIP_REQUIRE(op_arity(opcode) == 1, "opcode is not unary");
  check_id(a);
  const ObjectId id = add_object(opcode, make_word_u(0), name);
  add_element(id, {a});
  return id;
}

ObjectId DatapathBuilder::op(Opcode opcode, ObjectId a, ObjectId b,
                             const std::string& name) {
  VLSIP_REQUIRE(op_arity(opcode) == 2, "opcode is not binary");
  check_id(a);
  check_id(b);
  const ObjectId id = add_object(opcode, make_word_u(0), name);
  add_element(id, {a, b});
  return id;
}

ObjectId DatapathBuilder::op(Opcode opcode, ObjectId a, ObjectId b, ObjectId c,
                             const std::string& name) {
  VLSIP_REQUIRE(op_arity(opcode) == 3, "opcode is not ternary");
  check_id(a);
  check_id(b);
  check_id(c);
  const ObjectId id = add_object(opcode, make_word_u(0), name);
  add_element(id, {a, b, c});
  return id;
}

ObjectId DatapathBuilder::output(const std::string& name, ObjectId v) {
  VLSIP_REQUIRE(!name.empty(), "output needs a name");
  VLSIP_REQUIRE(!outputs_.contains(name), "duplicate output name: " + name);
  check_id(v);
  const ObjectId id = add_object(Opcode::kSink, make_word_u(0), name);
  add_element(id, {v});
  outputs_[name] = id;
  return id;
}

ObjectId DatapathBuilder::delay_i(ObjectId source, std::int64_t initial,
                                  const std::string& name) {
  check_id(source);
  const ObjectId id = add_object(Opcode::kBuff, make_word_u(0), name);
  library_[id].config.initial_token = true;
  library_[id].initial = make_word_i(initial);
  add_element(id, {source});
  return id;
}

ObjectId DatapathBuilder::delay_f(ObjectId source, double initial,
                                  const std::string& name) {
  check_id(source);
  const ObjectId id = add_object(Opcode::kBuff, make_word_u(0), name);
  library_[id].config.initial_token = true;
  library_[id].initial = make_word_f(initial);
  add_element(id, {source});
  return id;
}

ObjectId DatapathBuilder::placeholder(const std::string& name) {
  const ObjectId id = add_object(Opcode::kBuff, make_word_u(0), name);
  library_[id].config.initial_token = true;
  library_[id].initial = make_word_u(0);
  unbound_placeholders_.push_back(id);
  return id;
}

void DatapathBuilder::bind(ObjectId placeholder_id, ObjectId source) {
  check_id(placeholder_id);
  check_id(source);
  const auto it = std::find(unbound_placeholders_.begin(),
                            unbound_placeholders_.end(), placeholder_id);
  VLSIP_REQUIRE(it != unbound_placeholders_.end(),
                "bind() target is not an unbound placeholder");
  unbound_placeholders_.erase(it);
  add_element(placeholder_id, {source});
}

void DatapathBuilder::set_initial_i(ObjectId obj, std::int64_t v) {
  check_id(obj);
  VLSIP_REQUIRE(library_[obj].config.initial_token,
                "object has no initial token to set");
  library_[obj].initial = make_word_i(v);
}

void DatapathBuilder::set_initial_f(ObjectId obj, double v) {
  check_id(obj);
  VLSIP_REQUIRE(library_[obj].config.initial_token,
                "object has no initial token to set");
  library_[obj].initial = make_word_f(v);
}

Program DatapathBuilder::build() && {
  VLSIP_REQUIRE(unbound_placeholders_.empty(),
                "placeholder(s) left unbound — feedback loop not closed");
  Program p;
  p.library = std::move(library_);
  p.stream = std::move(stream_);
  p.inputs = std::move(inputs_);
  p.outputs = std::move(outputs_);
  return p;
}

std::vector<std::string> validate_program(const Program& program) {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < program.library.size(); ++i) {
    if (program.library[i].id != i) {
      problems.push_back("object " + std::to_string(i) +
                         " has non-dense id " +
                         std::to_string(program.library[i].id));
    }
  }
  for (std::size_t e = 0; e < program.stream.size(); ++e) {
    const auto& elem = program.stream[e];
    if (elem.sink >= program.library.size()) {
      problems.push_back("element " + std::to_string(e) +
                         " sinks to unknown object");
      continue;
    }
    const int arity =
        op_arity(program.library[elem.sink].config.opcode);
    int used = 0;
    for (int s = 0; s < kMaxSources; ++s) {
      if (elem.sources[static_cast<std::size_t>(s)] == kNoObject) continue;
      ++used;
      if (elem.sources[static_cast<std::size_t>(s)] >=
          program.library.size()) {
        problems.push_back("element " + std::to_string(e) + " source " +
                           std::to_string(s) + " unknown");
      } else if (s >= arity) {
        problems.push_back("element " + std::to_string(e) + " operand " +
                           std::to_string(s) + " exceeds arity of " +
                           op_name(program.library[elem.sink].config.opcode));
      }
    }
    (void)used;
  }
  for (const auto& [name, id] : program.inputs) {
    if (id >= program.library.size()) {
      problems.push_back("input '" + name + "' binds unknown object");
    } else if (program.library[id].config.opcode != Opcode::kBuff) {
      problems.push_back("input '" + name + "' is not a buffer object");
    }
  }
  for (const auto& [name, id] : program.outputs) {
    if (id >= program.library.size()) {
      problems.push_back("output '" + name + "' binds unknown object");
    } else if (program.library[id].config.opcode != Opcode::kSink) {
      problems.push_back("output '" + name + "' is not a sink object");
    }
  }
  return problems;
}

ConfigStream random_config_stream(std::size_t n_objects,
                                  std::size_t n_elements, double locality,
                                  std::uint64_t seed, int n_sources) {
  VLSIP_REQUIRE(n_objects >= 2, "need at least two objects");
  VLSIP_REQUIRE(locality >= 0.0 && locality <= 1.0,
                "locality must be in [0,1]");
  VLSIP_REQUIRE(n_sources == 1 || n_sources == 2,
                "one- or two-source model only");
  Xoshiro256 rng(seed);
  ConfigStream stream;
  // §2.6.2: "Regarding the source object ID, the preceding sink object ID
  // and an offset are used, and therefore by controlling the offset we
  // can generate a random configuration with the locality". We apply the
  // locality-controlled offset twice per element: source = previous sink
  // + offset, and sink = source + offset — so at locality 1 the datapath
  // is a chain of adjacent objects, and at locality 0 both draws are
  // effectively uniform over the array (the paper's "random datapath").
  const auto n = static_cast<std::int64_t>(n_objects);
  // Geometric offset magnitude: success probability p rises with
  // locality, so the mean offset (1-p)/p falls toward 0.
  const double p = 0.02 + 0.98 * locality;
  auto offset_from = [&](ObjectId base) {
    std::uint64_t magnitude = rng.geometric(p);
    if (magnitude >= n_objects) magnitude %= n_objects;
    const bool negative = rng.bernoulli(0.5);
    std::int64_t v = static_cast<std::int64_t>(base) +
                     (negative ? -static_cast<std::int64_t>(magnitude)
                               : static_cast<std::int64_t>(magnitude));
    return static_cast<ObjectId>(((v % n) + n) % n);
  };

  ObjectId prev_sink = static_cast<ObjectId>(rng.uniform(n_objects));
  for (std::size_t i = 0; i < n_elements; ++i) {
    ConfigElement e;
    const ObjectId src = offset_from(prev_sink);
    ObjectId sink = offset_from(src);
    if (sink == src) sink = (sink + 1) % n_objects;  // no self-chains
    e.sink = sink;
    e.sources[0] = src;
    if (n_sources == 2) {
      ObjectId src2 = offset_from(src);
      if (src2 == sink) src2 = (src2 + 1) % n_objects;
      e.sources[1] = src2;
    }
    stream.push(e);
    prev_sink = e.sink;
  }
  return stream;
}

ConfigStream chain_config_stream(std::size_t n_objects) {
  VLSIP_REQUIRE(n_objects >= 2, "a chain needs at least two objects");
  ConfigStream stream;
  for (std::size_t i = 1; i < n_objects; ++i) {
    ConfigElement e;
    e.sink = static_cast<ObjectId>(i);
    e.sources[0] = static_cast<ObjectId>(i - 1);
    stream.push(e);
  }
  return stream;
}

Program linear_pipeline_program(int stages) {
  VLSIP_REQUIRE(stages >= 1, "need at least one stage");
  DatapathBuilder b;
  ObjectId v = b.input("in");
  for (int s = 0; s < stages; ++s) {
    // Alternate +k and *2 so every stage changes the value detectably.
    if (s % 2 == 0) {
      v = b.op(Opcode::kIAdd, v, b.constant_i(s + 1),
               "add" + std::to_string(s));
    } else {
      v = b.op(Opcode::kIMul, v, b.constant_i(2),
               "mul" + std::to_string(s));
    }
  }
  b.output("out", v);
  return std::move(b).build();
}

Program conditional_example_program() {
  // Fig. 7(a): if (x > y) z = x + 1; else z = y + 2;
  // Both arms are computed; gates forward only the taken arm (speculative
  // pipelined execution across the four atomic blocks of fig. 7(d)).
  DatapathBuilder b;
  const ObjectId x = b.input("x");
  const ObjectId y = b.input("y");
  const ObjectId cond = b.op(Opcode::kCmpGt, x, y, "x>y");
  const ObjectId t =
      b.op(Opcode::kIAdd, x, b.constant_i(1, "c1"), "t=x+1");
  const ObjectId f =
      b.op(Opcode::kIAdd, y, b.constant_i(2, "c2"), "f=y+2");
  const ObjectId take_t = b.op(Opcode::kGate, cond, t, "send t if true");
  const ObjectId take_f = b.op(Opcode::kGateNot, cond, f, "send f if false");
  // The output buffer of fig. 7(a): whichever gate fires feeds it — only
  // one arm produces per wave, so a merge joins them.
  const ObjectId z = b.op(Opcode::kMerge, take_t, take_f, "z=buff");
  b.output("z", z);
  return std::move(b).build();
}

Program fir_program(const std::vector<double>& coefficients) {
  VLSIP_REQUIRE(!coefficients.empty(), "FIR needs at least one tap");
  DatapathBuilder b;
  const ObjectId x = b.input("x");
  // Delay line: unit-delay buffers with an initial zero token.
  std::vector<ObjectId> taps;
  taps.push_back(x);
  for (std::size_t k = 1; k < coefficients.size(); ++k) {
    const ObjectId d =
        b.op(Opcode::kBuff, taps.back(), "z-" + std::to_string(k));
    taps.push_back(d);
  }
  // Tap products and adder chain.
  ObjectId acc = kNoObject;
  for (std::size_t k = 0; k < coefficients.size(); ++k) {
    const ObjectId c = b.constant_f(coefficients[k], "c" + std::to_string(k));
    const ObjectId prod =
        b.op(Opcode::kFMul, taps[k], c, "p" + std::to_string(k));
    acc = (acc == kNoObject)
              ? prod
              : b.op(Opcode::kFAdd, acc, prod, "s" + std::to_string(k));
  }
  b.output("y", acc);
  Program p = std::move(b).build();
  // Mark the delay-line buffers as carrying an initial zero token.
  for (std::size_t k = 1; k < coefficients.size(); ++k) {
    // taps[k] is the k-th delay object's id.
    p.library[taps[k]].config.initial_token = true;
    p.library[taps[k]].initial = make_word_f(0.0);
  }
  return p;
}

}  // namespace vlsip::arch
