#include "arch/object.hpp"

namespace vlsip::arch {

OpClass op_class(Opcode op) {
  switch (op) {
    case Opcode::kNop:
      return OpClass::kNone;
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIShl:
    case Opcode::kIShr:
    case Opcode::kIAnd:
    case Opcode::kIOr:
    case Opcode::kIXor:
    case Opcode::kINeg:
    case Opcode::kCmpGt:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
      return OpClass::kIntAlu;
    case Opcode::kIMul:
      return OpClass::kIntMul;
    case Opcode::kIDiv:
    case Opcode::kIRem:
      return OpClass::kIntDiv;
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFNeg:
      return OpClass::kFloat;
    case Opcode::kFDiv:
      return OpClass::kFloatDiv;
    case Opcode::kLoad:
    case Opcode::kStore:
      return OpClass::kMemory;
    case Opcode::kConst:
    case Opcode::kBuff:
    case Opcode::kIota:
    case Opcode::kSelect:
    case Opcode::kGate:
    case Opcode::kGateNot:
    case Opcode::kMerge:
    case Opcode::kSink:
      return OpClass::kTransport;
  }
  return OpClass::kNone;
}

int op_arity(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kConst:
      return 0;
    case Opcode::kINeg:
    case Opcode::kFNeg:
    case Opcode::kBuff:
    case Opcode::kIota:
    case Opcode::kSink:
    case Opcode::kLoad:
      return 1;
    case Opcode::kSelect:
      return 3;
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMul:
    case Opcode::kIDiv:
    case Opcode::kIRem:
    case Opcode::kIShl:
    case Opcode::kIShr:
    case Opcode::kIAnd:
    case Opcode::kIOr:
    case Opcode::kIXor:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
    case Opcode::kCmpGt:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
    case Opcode::kGate:
    case Opcode::kGateNot:
    case Opcode::kMerge:
    case Opcode::kStore:
      return 2;
  }
  return 0;
}

int op_latency(Opcode op) {
  switch (op_class(op)) {
    case OpClass::kNone:
      return 1;
    case OpClass::kIntAlu:
      return 1;
    case OpClass::kIntMul:
      return 3;
    case OpClass::kIntDiv:
      return 12;
    case OpClass::kFloat:
      return 4;
    case OpClass::kFloatDiv:
      return 16;
    case OpClass::kMemory:
      return 2;  // memory-block port access; global-wire delay is added
                 // by the network model, not here
    case OpClass::kTransport:
      return 1;
  }
  return 1;
}

bool op_produces(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kStore:
    case Opcode::kSink:
      return false;
    default:
      return true;
  }
}

const char* op_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kIAdd: return "iadd";
    case Opcode::kISub: return "isub";
    case Opcode::kIMul: return "imul";
    case Opcode::kIDiv: return "idiv";
    case Opcode::kIRem: return "irem";
    case Opcode::kIShl: return "ishl";
    case Opcode::kIShr: return "ishr";
    case Opcode::kIAnd: return "iand";
    case Opcode::kIOr: return "ior";
    case Opcode::kIXor: return "ixor";
    case Opcode::kINeg: return "ineg";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kFNeg: return "fneg";
    case Opcode::kCmpGt: return "cmpgt";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kSelect: return "select";
    case Opcode::kGate: return "gate";
    case Opcode::kGateNot: return "gatenot";
    case Opcode::kMerge: return "merge";
    case Opcode::kConst: return "const";
    case Opcode::kBuff: return "buff";
    case Opcode::kIota: return "iota";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kSink: return "sink";
  }
  return "?";
}

}  // namespace vlsip::arch
