// Object-code serialization: a line-oriented text format for Programs
// (object library + global configuration stream + port bindings).
//
// The adaptive processor's "binary" is exactly this: logical objects and
// dependencies, no instructions. The format makes programs storable,
// diffable and loadable by tools:
//
//   vlsip-object-code v1
//   object <id> <opcode> imm=<hex> init=<hex|-> latency=<n|-> <name>
//   element <sink> <src0|-> <src1|-> <src2|->
//   input <name> <object-id>
//   output <name> <object-id>
#pragma once

#include <string>

#include "arch/datapath.hpp"

namespace vlsip::snapshot {
class Writer;
class Reader;
}  // namespace vlsip::snapshot

namespace vlsip::arch {

/// Renders a Program in the text format (always parseable back).
std::string to_text(const Program& program);

/// Parses the text format; throws PreconditionError with a line number
/// on malformed input.
Program from_text(const std::string& text);

/// Opcode from its op_name(); throws on unknown names.
Opcode opcode_from_name(const std::string& name);

// ---- binary stream encoding -------------------------------------------
//
// The global configuration data stream as it lives in memory blocks
// (§3.3: configuration data is stored into an inactive processor's
// memory): one 64-bit word per element, sink and three sources packed
// 16 bits each, 0xFFFF = no object. This is what the pointer-update /
// request-fetch pipeline stages actually read.

/// Packs one element; every id must be < 0xFFFF.
std::uint64_t encode_element(const ConfigElement& element);
ConfigElement decode_element(std::uint64_t word);

/// Packs a whole stream into memory words.
std::vector<std::uint64_t> encode_stream(const ConfigStream& stream);
ConfigStream decode_stream(const std::vector<std::uint64_t>& words);

// ---- snapshot embedding -----------------------------------------------
//
// Binary codecs used by the checkpoint layer (src/snapshot/): a logical
// object or a whole Program written into / read back from a snapshot
// byte stream. Equivalent to to_text/from_text but without the text
// round-trip, and covering every field bit-exactly (immediates and
// initial words keep their raw 64-bit payload).

void save_object(snapshot::Writer& w, const LogicalObject& object);
LogicalObject restore_object(snapshot::Reader& r);

void save_program(snapshot::Writer& w, const Program& program);
Program restore_program(snapshot::Reader& r);

}  // namespace vlsip::arch
