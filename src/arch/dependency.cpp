#include "arch/dependency.hpp"

#include <algorithm>
#include <list>
#include <unordered_map>

namespace vlsip::arch {

std::vector<std::size_t> stack_distances(const std::vector<ObjectId>& trace) {
  // LRU stack as a list (top = front) with an index for O(1) lookup.
  // Distance is the 1-based position of the object before promotion.
  std::vector<std::size_t> distances;
  distances.reserve(trace.size());
  std::list<ObjectId> stack;
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> where;

  for (ObjectId id : trace) {
    auto it = where.find(id);
    if (it == where.end()) {
      distances.push_back(kColdDistance);
    } else {
      std::size_t depth = 1;
      for (auto walk = stack.begin(); walk != it->second; ++walk) ++depth;
      distances.push_back(depth);
      stack.erase(it->second);
    }
    stack.push_front(id);
    where[id] = stack.begin();
  }
  return distances;
}

double hit_rate(const std::vector<ObjectId>& trace, std::size_t capacity) {
  if (trace.empty()) return 0.0;
  const auto d = stack_distances(trace);
  std::size_t hits = 0;
  for (auto dist : d) {
    if (dist != kColdDistance && dist <= capacity) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trace.size());
}

std::vector<std::size_t> hits_by_capacity(const std::vector<ObjectId>& trace,
                                          std::size_t max_capacity) {
  std::vector<std::size_t> per_distance(max_capacity + 1, 0);
  for (auto dist : stack_distances(trace)) {
    if (dist != kColdDistance && dist <= max_capacity) ++per_distance[dist];
  }
  // Prefix-sum: hits at capacity c = references with distance <= c.
  std::vector<std::size_t> hits(max_capacity + 1, 0);
  std::size_t cum = 0;
  for (std::size_t c = 1; c <= max_capacity; ++c) {
    cum += per_distance[c];
    hits[c] = cum;
  }
  return hits;
}

std::vector<std::size_t> working_set_sizes(const std::vector<ObjectId>& trace,
                                           std::size_t window) {
  std::vector<std::size_t> sizes;
  sizes.reserve(trace.size());
  if (window == 0) {
    sizes.assign(trace.size(), 0);
    return sizes;
  }
  // Sliding multiset of the last `window` references.
  std::unordered_map<ObjectId, std::size_t> counts;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    ++counts[trace[t]];
    if (t >= window) {
      const ObjectId leaving = trace[t - window];
      auto it = counts.find(leaving);
      if (--it->second == 0) counts.erase(it);
    }
    sizes.push_back(counts.size());
  }
  return sizes;
}

double mean_working_set(const std::vector<ObjectId>& trace,
                        std::size_t window) {
  if (trace.empty()) return 0.0;
  const auto sizes = working_set_sizes(trace, window);
  double sum = 0.0;
  for (auto s : sizes) sum += static_cast<double>(s);
  return sum / static_cast<double>(sizes.size());
}

std::size_t window_for_coverage(const std::vector<ObjectId>& trace,
                                double fraction) {
  if (trace.empty()) return 0;
  std::unordered_map<ObjectId, std::size_t> all;
  for (auto id : trace) ++all[id];
  const double target = fraction * static_cast<double>(all.size());
  for (std::size_t w = 1; w <= trace.size(); w *= 2) {
    if (mean_working_set(trace, w) >= target) {
      // Refine linearly within [w/2, w].
      for (std::size_t v = w / 2 + 1; v <= w; ++v) {
        if (mean_working_set(trace, v) >= target) return v;
      }
      return w;
    }
  }
  return trace.size();
}

DependencyProfile analyze_dependencies(const ConfigStream& stream) {
  DependencyProfile p;
  const auto trace = stream.reference_trace();
  p.references = trace.size();
  p.distinct = stream.distinct_objects().size();

  const auto d = stack_distances(trace);
  std::size_t finite = 0;
  double sum = 0.0;
  for (auto dist : d) {
    if (dist == kColdDistance) {
      ++p.cold_misses;
    } else {
      ++finite;
      sum += static_cast<double>(dist);
      p.max_distance = std::max(p.max_distance, dist);
    }
  }
  p.mean_distance = finite ? sum / static_cast<double>(finite) : 0.0;
  p.min_capacity_for_no_warm_miss = p.max_distance;
  return p;
}

}  // namespace vlsip::arch
