// Wire messages — the typed vocabulary of the hub/worker protocol.
//
// Each message is a struct with snapshot save/restore codecs; frames
// carry the encoded payload (net/frame.hpp). encode<M>() builds the
// full frame bytes; decode_payload<M>() parses a received frame's
// payload and rejects trailing garbage (Reader::bytes_remaining()
// must hit zero) — a payload that decodes but doesn't *end* is as
// malformed as one that doesn't decode.
//
// Session shape:
//   * Every connection opens with Hello (role + the sender's protocol
//     version) answered by HelloAck (negotiated version = min of the
//     two, plus the hub-assigned peer id). Frames at a version above
//     the receiver's are rejected at the framing layer.
//   * Clients send SubmitJob (seq scoped to the client) and receive
//     JobResult keyed by that seq; the hub owns the global job id.
//   * Workers receive AssignJob (global id), answer JobResult, and
//     send Heartbeat on a timer; silence past the hub's timeout is
//     death, and the dead worker's in-flight jobs are requeued.
//   * Drain/migration: Drain -> the worker ships a CheckpointMsg (its
//     chip .vsnap + a ReplayLog of unstarted jobs, ids attached) ->
//     the hub forwards it to a peer as Resume -> the peer replays and
//     answers ordinary JobResults for the migrated ids.
//
// Job and outcome payloads reuse the replay codecs
// (runtime/replay.hpp), so "a job on the wire" and "a job in a .vsnap
// session" are the same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "runtime/replay.hpp"
#include "scaling/job.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::net {

/// Who is at the far end of a connection.
enum class Role : std::uint8_t { kClient = 0, kWorker = 1 };

struct HelloMsg {
  static constexpr MsgType kType = MsgType::kHello;
  Role role = Role::kClient;
  /// The sender's newest supported protocol version.
  std::uint32_t proto_version = kProtoVersion;
  /// Display name ("worker-a", "vlsipc"); diagnostics only.
  std::string name;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct HelloAckMsg {
  static constexpr MsgType kType = MsgType::kHelloAck;
  /// min(sender's version, receiver's version) — both sides hold it.
  std::uint32_t proto_version = kProtoVersion;
  /// Hub-assigned id; for workers this is the id drain/requeue
  /// reporting refers to.
  std::uint64_t peer_id = 0;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct SubmitJobMsg {
  static constexpr MsgType kType = MsgType::kSubmitJob;
  /// Client-scoped sequence number; JobResult echoes it back.
  std::uint64_t seq = 0;
  scaling::Job job;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct AssignJobMsg {
  static constexpr MsgType kType = MsgType::kAssignJob;
  /// Hub-global job id; the worker echoes it in JobResult.
  std::uint64_t job_id = 0;
  scaling::Job job;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct JobResultMsg {
  static constexpr MsgType kType = MsgType::kJobResult;
  /// Worker->hub: the global job id. Hub->client: the client's seq.
  std::uint64_t id = 0;
  scaling::JobOutcome outcome;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct HeartbeatMsg {
  static constexpr MsgType kType = MsgType::kHeartbeat;
  std::uint64_t queue_depth = 0;
  /// Jobs this worker has completed over its lifetime.
  std::uint64_t served = 0;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct DrainMsg {
  static constexpr MsgType kType = MsgType::kDrain;
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

/// The migration payload: everything a peer needs to continue a
/// drained worker's unstarted work from its exact chip state.
struct CheckpointMsg {
  static constexpr MsgType kType = MsgType::kCheckpoint;
  /// Hub-assigned id of the worker that drained.
  std::uint64_t worker_id = 0;
  /// Farm tick of the source farm when the checkpoint was taken.
  std::uint64_t checkpoint_tick = 0;
  /// Hub-global ids of log.jobs, in order (the hub re-keys the peer's
  /// results back to waiting clients with these).
  std::vector<std::uint64_t> job_ids;
  /// Complete .vsnap of the drained chip (ChipFarm::save_chip output).
  /// Empty when `chain` carries the state instead.
  snapshot::Snapshot chip;
  /// Incremental form (proto v2): the drained chip as a checkpoint
  /// chain — one full keyframe followed by delta containers
  /// (ChipFarm::save_chip_chain output). When non-empty the receiver
  /// rebuilds the flat snapshot with snapshot::materialize_chain and
  /// `chip` is left empty; a corrupt chain on the receiving side must
  /// fall back to re-serving the attached jobs on fresh silicon, never
  /// drop them. Empty on v1-style full-snapshot migrations.
  std::vector<snapshot::Snapshot> chain;
  /// The unstarted jobs, replayable via runtime::replay_from.
  runtime::ReplayLog log;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

/// Hub -> peer worker: identical body to CheckpointMsg, re-framed.
struct ResumeMsg {
  static constexpr MsgType kType = MsgType::kResume;
  CheckpointMsg checkpoint;

  void save(snapshot::Writer& w) const { checkpoint.save(w); }
  void restore(snapshot::Reader& r) { checkpoint.restore(r); }
};

struct DrainWorkerMsg {
  static constexpr MsgType kType = MsgType::kDrainWorker;
  std::uint64_t worker_id = 0;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct MetricsRequestMsg {
  static constexpr MsgType kType = MsgType::kMetricsRequest;
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct MetricsReportMsg {
  static constexpr MsgType kType = MsgType::kMetricsReport;
  /// A complete JSON document (obs::JsonWriter output, schema_version
  /// leading) — the hub's counters plus per-worker liveness.
  std::string json;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct ShutdownMsg {
  static constexpr MsgType kType = MsgType::kShutdown;
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct ErrorMsg {
  static constexpr MsgType kType = MsgType::kError;
  /// A StatusCode value (status_code_name() names it).
  std::int32_t code = 0;
  std::string message;

  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

struct GoodbyeMsg {
  static constexpr MsgType kType = MsgType::kGoodbye;
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);
};

/// Frame bytes for `msg` (header + snapshot-encoded payload).
template <typename M>
std::vector<std::uint8_t> encode(const M& msg) {
  snapshot::Snapshot payload;
  snapshot::Writer w(payload);
  msg.save(w);
  return encode_frame(M::kType, payload);
}

/// Decodes a frame's payload as message M. Typed rejects: a frame of
/// the wrong type or with undecodable/trailing bytes is
/// kProtocolError (SnapshotError is caught here — hostile payloads
/// must not throw across the daemon loops).
template <typename M>
StatusOr<M> decode_payload(const Frame& frame) {
  if (frame.type != M::kType) {
    return Status(StatusCode::kProtocolError,
                  "expected message type " +
                      std::to_string(static_cast<int>(M::kType)) + ", got " +
                      std::to_string(static_cast<int>(frame.type)));
  }
  try {
    snapshot::Reader r(frame.payload);
    M msg;
    msg.restore(r);
    if (r.bytes_remaining() != 0) {
      return Status(StatusCode::kProtocolError,
                    std::to_string(r.bytes_remaining()) +
                        " trailing bytes after the message payload");
    }
    return msg;
  } catch (const snapshot::SnapshotError& e) {
    return Status(StatusCode::kProtocolError,
                  std::string("undecodable payload: ") + e.what());
  }
}

/// Blocking framed I/O over a socket: one frame out / one frame in.
/// read_frame validates the header before allocating the payload and
/// returns the framing layer's typed errors.
Status write_frame(Socket& sock, const std::vector<std::uint8_t>& bytes);
StatusOr<Frame> read_frame(Socket& sock,
                           std::size_t max_payload = kMaxFramePayload);

/// write_frame(encode(msg)) in one call.
template <typename M>
Status send_msg(Socket& sock, const M& msg) {
  return write_frame(sock, encode(msg));
}

}  // namespace vlsip::net
