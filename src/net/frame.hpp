// Wire framing — the byte-level contract of the distributed farm.
//
// Every message on a vlsipd connection is one frame: a fixed 12-byte
// header followed by a length-prefixed binary payload. The payload is a
// complete snapshot byte stream (snapshot::Writer output, VSNP header
// included), so the farm's wire protocol reuses the checkpoint codecs
// — the same bounds-checked Reader that parses a .vsnap parses a
// submitted job or a migrated chip, and a checkpoint transfer is the
// checkpoint file, verbatim, inside a frame.
//
//   offset  size  field
//   0       4     frame magic "VFRM" (little-endian u32)
//   4       2     protocol version (u16), currently 1
//   6       2     message type (u16, net::MsgType)
//   8       4     payload length N (u32)
//   12      N     payload (snapshot byte stream)
//
// Decoding is hostile-input safe and returns typed Status errors, never
// exceptions: wrong magic -> kProtocolError, a version above
// kProtoVersion -> kVersionMismatch, a frame that ends early ->
// kFrameTruncated, a declared payload above the receiver's limit ->
// kFrameOversized (checked *before* allocating). Payload decoders
// additionally reject trailing garbage via Reader::bytes_remaining().
//
// Versioning: kProtoVersion bumps whenever the frame layout or any
// message encoding changes. Peers negotiate down to the older side's
// version at Hello time (net/wire.hpp); a frame from the future is
// rejected at this layer before its payload is ever touched.
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.hpp"
#include "snapshot/snapshot.hpp"

namespace vlsip::net {

/// "VFRM" — identifies a vlsipd wire frame.
inline constexpr std::uint32_t kFrameMagic = 0x5646524Du;
/// Current wire-protocol version. Bump on any layout change.
/// v2: CheckpointMsg carries an incremental checkpoint chain field
/// (keyframe + delta containers) alongside the flat chip snapshot.
inline constexpr std::uint16_t kProtoVersion = 2;
/// Header bytes before the payload.
inline constexpr std::size_t kFrameHeaderSize = 12;
/// Default payload ceiling (checkpoint transfers dominate sizing; a
/// whole-chip .vsnap is a few hundred KiB at the default geometry).
inline constexpr std::size_t kMaxFramePayload = 256u << 20;

/// Message discriminator carried in the frame header. Values are wire
/// format: never renumber, only append.
enum class MsgType : std::uint16_t {
  kHello = 1,         ///< first frame on any connection (role, version)
  kHelloAck = 2,      ///< hub's reply: negotiated version + peer id
  kSubmitJob = 3,     ///< client -> hub: one job
  kJobResult = 4,     ///< worker -> hub -> client: one outcome
  kAssignJob = 5,     ///< hub -> worker: serve this job
  kHeartbeat = 6,     ///< worker -> hub: liveness + load
  kDrain = 7,         ///< hub -> worker: checkpoint + hand back work
  kCheckpoint = 8,    ///< worker -> hub: migration snapshot (drain reply)
  kResume = 9,        ///< hub -> peer worker: take over migrated work
  kDrainWorker = 10,  ///< client -> hub: drain worker N
  kMetricsRequest = 11,  ///< client -> hub
  kMetricsReport = 12,   ///< hub -> client: JSON metrics document
  kShutdown = 13,     ///< orderly stop (client -> hub -> workers)
  kError = 14,        ///< typed failure notice, usually before close
  kGoodbye = 15,      ///< graceful connection close
};

/// True when `type` is a value this build knows how to decode.
bool known_msg_type(std::uint16_t type);

/// One decoded frame: the header fields plus the raw payload bytes
/// (still encoded; hand to decode_payload<T> / snapshot::Reader).
struct Frame {
  std::uint16_t version = kProtoVersion;
  MsgType type = MsgType::kError;
  snapshot::Snapshot payload;
};

/// Serialises a frame (current protocol version). The payload snapshot
/// is taken as already encoded by a snapshot::Writer.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const snapshot::Snapshot& payload);

/// Parses one complete frame from `data`. Typed rejects (see file
/// header); also kProtocolError when bytes remain after the declared
/// payload — a buffer handed here must contain exactly one frame.
StatusOr<Frame> decode_frame(const std::uint8_t* data, std::size_t len,
                             std::size_t max_payload = kMaxFramePayload);

/// Header-only validation used by streaming readers: checks magic,
/// version and payload bound, and reports the payload length to read
/// next. `data` must hold at least kFrameHeaderSize bytes.
StatusOr<std::uint32_t> check_frame_header(
    const std::uint8_t* data, std::size_t max_payload, MsgType* type_out,
    std::uint16_t* version_out);

}  // namespace vlsip::net
