#include "net/client.hpp"

namespace vlsip::net {

StatusOr<HubClient> HubClient::connect(Options options) {
  auto sock = Socket::connect(options.hub);
  if (!sock.ok()) return sock.status();
  HubClient client;
  client.sock_ = std::move(*sock);
  client.max_payload_ = options.max_payload;
  client.max_in_flight_ = options.max_in_flight;

  HelloMsg hello;
  hello.role = Role::kClient;
  hello.proto_version = kProtoVersion;
  hello.name = options.name;
  const Status sent = send_msg(client.sock_, hello);
  if (!sent.ok()) return sent;

  auto frame = read_frame(client.sock_, client.max_payload_);
  if (!frame.ok()) return frame.status();
  if (frame->type == MsgType::kError) {
    const auto err = decode_payload<ErrorMsg>(*frame);
    if (!err.ok()) return err.status();
    return Status(static_cast<StatusCode>(err->code), err->message);
  }
  const auto ack = decode_payload<HelloAckMsg>(*frame);
  if (!ack.ok()) return ack.status();
  client.client_id_ = ack->peer_id;
  client.proto_version_ = ack->proto_version;
  return client;
}

StatusOr<std::uint64_t> HubClient::submit(const scaling::Job& job) {
  // Backpressure: a full window means the hub owes us results; read
  // them (into the collect() buffer) before adding to its backlog.
  while (max_in_flight_ > 0 && in_flight() >= max_in_flight_) {
    const Status pumped = pump();
    if (!pumped.ok()) return pumped;
  }
  SubmitJobMsg msg;
  msg.seq = next_seq_;
  msg.job = job;
  const Status sent = send_msg(sock_, msg);
  if (!sent.ok()) return sent;
  return next_seq_++;
}

Status HubClient::pump() {
  auto frame = read_frame(sock_, max_payload_);
  if (!frame.ok()) return frame.status();
  switch (frame->type) {
    case MsgType::kJobResult: {
      auto result = decode_payload<JobResultMsg>(*frame);
      if (!result.ok()) return result.status();
      pending_results_.push_back(std::move(*result));
      return Status::Ok();
    }
    case MsgType::kMetricsReport: {
      auto report = decode_payload<MetricsReportMsg>(*frame);
      if (!report.ok()) return report.status();
      pending_metrics_ = std::move(report->json);
      return Status::Ok();
    }
    case MsgType::kError: {
      auto err = decode_payload<ErrorMsg>(*frame);
      if (!err.ok()) return err.status();
      return Status(static_cast<StatusCode>(err->code), err->message);
    }
    default:
      return Status(StatusCode::kProtocolError,
                    "unexpected frame type " +
                        std::to_string(static_cast<int>(frame->type)) +
                        " on a client connection");
  }
}

StatusOr<std::vector<JobResultMsg>> HubClient::collect(std::size_t n) {
  std::vector<JobResultMsg> results;
  results.reserve(n);
  while (results.size() < n) {
    if (!pending_results_.empty()) {
      results.push_back(std::move(pending_results_.front()));
      pending_results_.pop_front();
      ++collected_;
      continue;
    }
    const Status pumped = pump();
    if (!pumped.ok()) return pumped;
  }
  return results;
}

Status HubClient::drain_worker(std::uint64_t worker_id) {
  DrainWorkerMsg msg;
  msg.worker_id = worker_id;
  return send_msg(sock_, msg);
}

StatusOr<std::string> HubClient::metrics_json() {
  pending_metrics_.reset();
  const Status sent = send_msg(sock_, MetricsRequestMsg{});
  if (!sent.ok()) return sent;
  while (!pending_metrics_.has_value()) {
    const Status pumped = pump();
    if (!pumped.ok()) return pumped;
  }
  return *pending_metrics_;
}

Status HubClient::shutdown_hub() { return send_msg(sock_, ShutdownMsg{}); }

void HubClient::goodbye() {
  if (!sock_.valid()) return;
  // Best-effort: the hub may already be gone.
  (void)send_msg(sock_, GoodbyeMsg{});
  sock_.close();
}

}  // namespace vlsip::net
