// Minimal POSIX socket layer for the distributed farm.
//
// One abstraction, two transports: TCP (loopback or LAN) and Unix
// domain sockets, selected by the address string — "host:port" is TCP
// ("127.0.0.1:0" binds an ephemeral port; Listener::address() reports
// the actual one), "unix:/path" is a Unix socket. All failures surface
// as Status (kIoError / kInvalidArgument); a peer closing the
// connection reads as kIoError with "connection closed" in the
// message, which the daemons treat as worker/client death.
//
// Blocking I/O only: each daemon connection owns a receive thread, and
// liveness is handled above this layer (heartbeats + a health loop
// that calls Socket::shutdown_both() to unblock a stuck reader).
// Writes use MSG_NOSIGNAL so a dead peer yields a Status, not SIGPIPE.
#pragma once

#include <cstdint>
#include <string>

#include "core/status.hpp"

namespace vlsip::net {

/// Owning, movable socket fd. recv/send loop until the full count is
/// transferred — the framing layer reads exact header/payload sizes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects per the address grammar in the file header.
  static StatusOr<Socket> connect(const std::string& address);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes (kIoError on a dead peer).
  Status send_all(const void* data, std::size_t n);

  /// Reads exactly `n` bytes. A clean EOF before the first byte (or a
  /// mid-read one) is kIoError "connection closed".
  Status recv_exact(void* data, std::size_t n);

  /// Unblocks any thread stuck in recv/send on this socket (the health
  /// loop's lever for declaring a peer dead). Safe to call twice.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Listening endpoint. TCP listeners report their bound port so tests
/// and CI can listen on "127.0.0.1:0" and discover the real address.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  /// Binds + listens per the address grammar in the file header.
  static StatusOr<Listener> listen(const std::string& address);

  bool valid() const { return fd_ >= 0; }

  /// The connectable address ("127.0.0.1:41731" / "unix:/path"); for
  /// TCP this carries the kernel-assigned port when 0 was requested.
  const std::string& address() const { return address_; }
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; kIoError once close()d.
  StatusOr<Socket> accept();

  /// Stops listening and unblocks accept(). Unix listeners unlink
  /// their path. Safe to call twice.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string address_;
  std::string unlink_path_;
};

}  // namespace vlsip::net
