#include "net/frame.hpp"

#include <cstring>
#include <string>

namespace vlsip::net {

namespace {

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint16_t load_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

bool known_msg_type(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(MsgType::kHello) &&
         type <= static_cast<std::uint16_t>(MsgType::kGoodbye);
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const snapshot::Snapshot& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  const auto push_u32 = [&out](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + sizeof v);
  };
  const auto push_u16 = [&out](std::uint16_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + sizeof v);
  };
  push_u32(kFrameMagic);
  push_u16(kProtoVersion);
  push_u16(static_cast<std::uint16_t>(type));
  push_u32(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
  return out;
}

StatusOr<std::uint32_t> check_frame_header(
    const std::uint8_t* data, std::size_t max_payload, MsgType* type_out,
    std::uint16_t* version_out) {
  const std::uint32_t magic = load_u32(data);
  if (magic != kFrameMagic) {
    return Status(StatusCode::kProtocolError,
                  "frame has wrong magic 0x" + std::to_string(magic));
  }
  const std::uint16_t version = load_u16(data + 4);
  if (version > kProtoVersion) {
    return Status(StatusCode::kVersionMismatch,
                  "frame version " + std::to_string(version) +
                      " is newer than supported version " +
                      std::to_string(kProtoVersion));
  }
  const std::uint16_t type = load_u16(data + 6);
  if (!known_msg_type(type)) {
    return Status(StatusCode::kProtocolError,
                  "frame has unknown message type " + std::to_string(type));
  }
  const std::uint32_t payload_len = load_u32(data + 8);
  if (payload_len > max_payload) {
    return Status(StatusCode::kFrameOversized,
                  "frame declares " + std::to_string(payload_len) +
                      " payload bytes; limit is " +
                      std::to_string(max_payload));
  }
  if (type_out != nullptr) *type_out = static_cast<MsgType>(type);
  if (version_out != nullptr) *version_out = version;
  return payload_len;
}

StatusOr<Frame> decode_frame(const std::uint8_t* data, std::size_t len,
                             std::size_t max_payload) {
  if (len < kFrameHeaderSize) {
    return Status(StatusCode::kFrameTruncated,
                  "frame ends inside its header (" + std::to_string(len) +
                      " of " + std::to_string(kFrameHeaderSize) + " bytes)");
  }
  Frame frame;
  const auto payload_len =
      check_frame_header(data, max_payload, &frame.type, &frame.version);
  if (!payload_len.ok()) return payload_len.status();
  const std::size_t declared = *payload_len;
  if (len < kFrameHeaderSize + declared) {
    return Status(StatusCode::kFrameTruncated,
                  "frame declares " + std::to_string(declared) +
                      " payload bytes but only " +
                      std::to_string(len - kFrameHeaderSize) + " follow");
  }
  if (len > kFrameHeaderSize + declared) {
    return Status(StatusCode::kProtocolError,
                  std::to_string(len - kFrameHeaderSize - declared) +
                      " trailing bytes after the frame payload");
  }
  frame.payload.bytes().assign(data + kFrameHeaderSize,
                               data + kFrameHeaderSize + declared);
  return frame;
}

}  // namespace vlsip::net
