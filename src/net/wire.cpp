#include "net/wire.hpp"

namespace vlsip::net {

void HelloMsg::save(snapshot::Writer& w) const {
  w.section("net.hello");
  w.u8(static_cast<std::uint8_t>(role));
  w.u32(proto_version);
  w.str(name);
}

void HelloMsg::restore(snapshot::Reader& r) {
  r.section("net.hello");
  const std::uint8_t raw_role = r.u8();
  if (raw_role > static_cast<std::uint8_t>(Role::kWorker)) {
    throw snapshot::SnapshotError("hello has unknown role " +
                                  std::to_string(raw_role));
  }
  role = static_cast<Role>(raw_role);
  proto_version = r.u32();
  name = r.str();
}

void HelloAckMsg::save(snapshot::Writer& w) const {
  w.section("net.hello_ack");
  w.u32(proto_version);
  w.u64(peer_id);
}

void HelloAckMsg::restore(snapshot::Reader& r) {
  r.section("net.hello_ack");
  proto_version = r.u32();
  peer_id = r.u64();
}

void SubmitJobMsg::save(snapshot::Writer& w) const {
  w.section("net.submit");
  w.u64(seq);
  runtime::save_job(w, job);
}

void SubmitJobMsg::restore(snapshot::Reader& r) {
  r.section("net.submit");
  seq = r.u64();
  job = runtime::restore_job(r);
}

void AssignJobMsg::save(snapshot::Writer& w) const {
  w.section("net.assign");
  w.u64(job_id);
  runtime::save_job(w, job);
}

void AssignJobMsg::restore(snapshot::Reader& r) {
  r.section("net.assign");
  job_id = r.u64();
  job = runtime::restore_job(r);
}

void JobResultMsg::save(snapshot::Writer& w) const {
  w.section("net.result");
  w.u64(id);
  runtime::save_outcome(w, outcome);
}

void JobResultMsg::restore(snapshot::Reader& r) {
  r.section("net.result");
  id = r.u64();
  outcome = runtime::restore_outcome(r);
}

void HeartbeatMsg::save(snapshot::Writer& w) const {
  w.section("net.heartbeat");
  w.u64(queue_depth);
  w.u64(served);
}

void HeartbeatMsg::restore(snapshot::Reader& r) {
  r.section("net.heartbeat");
  queue_depth = r.u64();
  served = r.u64();
}

void DrainMsg::save(snapshot::Writer& w) const { w.section("net.drain"); }
void DrainMsg::restore(snapshot::Reader& r) { r.section("net.drain"); }

void CheckpointMsg::save(snapshot::Writer& w) const {
  w.section("net.checkpoint");
  w.u64(worker_id);
  w.u64(checkpoint_tick);
  w.vec_u64(job_ids);
  w.vec_u8(chip.bytes());
  // Proto v2: the checkpoint chain. Each link is its own length-
  // prefixed snapshot buffer (keyframe first, then deltas).
  w.u64(chain.size());
  for (const auto& link : chain) w.vec_u8(link.bytes());
  log.save(w);
}

void CheckpointMsg::restore(snapshot::Reader& r) {
  r.section("net.checkpoint");
  worker_id = r.u64();
  checkpoint_tick = r.u64();
  job_ids = r.vec_u64();
  chip.bytes() = r.vec_u8();
  // Every link is at least a header (8 bytes) behind a u64 length —
  // count() bounds a hostile chain count before any allocation.
  const std::uint64_t links = r.count(16);
  chain.clear();
  chain.reserve(static_cast<std::size_t>(links));
  for (std::uint64_t i = 0; i < links; ++i) {
    snapshot::Snapshot link;
    link.bytes() = r.vec_u8();
    chain.push_back(std::move(link));
  }
  log.restore(r);
  if (!chip.empty() && !chain.empty()) {
    throw snapshot::SnapshotError(
        "checkpoint transfer carries both a flat snapshot and a chain");
  }
  if (job_ids.size() != log.jobs.size()) {
    throw snapshot::SnapshotError(
        "checkpoint transfer id/job count mismatch: " +
        std::to_string(job_ids.size()) + " ids for " +
        std::to_string(log.jobs.size()) + " jobs");
  }
}

void DrainWorkerMsg::save(snapshot::Writer& w) const {
  w.section("net.drain_worker");
  w.u64(worker_id);
}

void DrainWorkerMsg::restore(snapshot::Reader& r) {
  r.section("net.drain_worker");
  worker_id = r.u64();
}

void MetricsRequestMsg::save(snapshot::Writer& w) const {
  w.section("net.metrics_request");
}

void MetricsRequestMsg::restore(snapshot::Reader& r) {
  r.section("net.metrics_request");
}

void MetricsReportMsg::save(snapshot::Writer& w) const {
  w.section("net.metrics_report");
  w.str(json);
}

void MetricsReportMsg::restore(snapshot::Reader& r) {
  r.section("net.metrics_report");
  json = r.str();
}

void ShutdownMsg::save(snapshot::Writer& w) const {
  w.section("net.shutdown");
}

void ShutdownMsg::restore(snapshot::Reader& r) {
  r.section("net.shutdown");
}

void ErrorMsg::save(snapshot::Writer& w) const {
  w.section("net.error");
  w.i32(code);
  w.str(message);
}

void ErrorMsg::restore(snapshot::Reader& r) {
  r.section("net.error");
  code = r.i32();
  message = r.str();
}

void GoodbyeMsg::save(snapshot::Writer& w) const {
  w.section("net.goodbye");
}

void GoodbyeMsg::restore(snapshot::Reader& r) {
  r.section("net.goodbye");
}

Status write_frame(Socket& sock, const std::vector<std::uint8_t>& bytes) {
  return sock.send_all(bytes.data(), bytes.size());
}

StatusOr<Frame> read_frame(Socket& sock, std::size_t max_payload) {
  std::uint8_t header[kFrameHeaderSize];
  const Status got_header = sock.recv_exact(header, sizeof header);
  if (!got_header.ok()) return got_header;
  Frame frame;
  const auto payload_len =
      check_frame_header(header, max_payload, &frame.type, &frame.version);
  if (!payload_len.ok()) return payload_len.status();
  frame.payload.bytes().resize(*payload_len);
  if (*payload_len > 0) {
    const Status got_payload =
        sock.recv_exact(frame.payload.bytes().data(), *payload_len);
    if (!got_payload.ok()) return got_payload;
  }
  return frame;
}

}  // namespace vlsip::net
