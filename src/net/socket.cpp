#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vlsip::net {

namespace {

Status errno_status(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

struct ParsedAddress {
  bool is_unix = false;
  std::string path;        // unix
  std::string host;        // tcp
  std::uint16_t port = 0;  // tcp
};

StatusOr<ParsedAddress> parse_address(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind("unix:", 0) == 0) {
    parsed.is_unix = true;
    parsed.path = address.substr(5);
    if (parsed.path.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "unix address needs a path: " + address);
    }
    if (parsed.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status(StatusCode::kInvalidArgument,
                    "unix socket path too long: " + parsed.path);
    }
    return parsed;
  }
  const auto colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "address must be host:port or unix:/path, got: " + address);
  }
  parsed.host = address.substr(0, colon);
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) {
    return Status(StatusCode::kInvalidArgument,
                  "bad port in address: " + address);
  }
  parsed.port = static_cast<std::uint16_t>(port);
  return parsed;
}

StatusOr<sockaddr_in> tcp_sockaddr(const ParsedAddress& parsed) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(parsed.port);
  if (::inet_pton(AF_INET, parsed.host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument,
                  "not an IPv4 address: " + parsed.host +
                      " (the farm daemons take numeric addresses)");
  }
  return addr;
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

}  // namespace

StatusOr<Socket> Socket::connect(const std::string& address) {
  const auto parsed = parse_address(address);
  if (!parsed.ok()) return parsed.status();
  if (parsed->is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return errno_status("socket");
    const sockaddr_un addr = unix_sockaddr(parsed->path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const Status failed = errno_status("connect " + address);
      ::close(fd);
      return failed;
    }
    return Socket(fd);
  }
  const auto addr = tcp_sockaddr(*parsed);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                sizeof *addr) != 0) {
    const Status failed = errno_status("connect " + address);
    ::close(fd);
    return failed;
  }
  // Frames are small and latency-sensitive (heartbeats, job results);
  // coalescing them behind Nagle only adds round trips.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

Status Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    if (sent == 0) {
      return Status(StatusCode::kIoError, "send: connection closed");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return Status::Ok();
}

Status Socket::recv_exact(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    if (got == 0) {
      return Status(StatusCode::kIoError, "recv: connection closed");
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return Status::Ok();
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      address_(std::move(other.address_)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.fd_ = -1;
  other.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    address_ = std::move(other.address_);
    unlink_path_ = std::move(other.unlink_path_);
    other.fd_ = -1;
    other.unlink_path_.clear();
  }
  return *this;
}

StatusOr<Listener> Listener::listen(const std::string& address) {
  const auto parsed = parse_address(address);
  if (!parsed.ok()) return parsed.status();
  Listener listener;
  if (parsed->is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return errno_status("socket");
    // A stale socket file from a crashed daemon would make bind fail
    // forever; remove it first (connect()ability is re-established by
    // this bind).
    ::unlink(parsed->path.c_str());
    const sockaddr_un addr = unix_sockaddr(parsed->path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd, 64) != 0) {
      const Status failed = errno_status("listen " + address);
      ::close(fd);
      return failed;
    }
    listener.fd_ = fd;
    listener.address_ = address;
    listener.unlink_path_ = parsed->path;
    return listener;
  }
  const auto addr = tcp_sockaddr(*parsed);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const Status failed = errno_status("listen " + address);
    ::close(fd);
    return failed;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status failed = errno_status("getsockname");
    ::close(fd);
    return failed;
  }
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  listener.address_ = parsed->host + ":" + std::to_string(listener.port_);
  return listener;
}

StatusOr<Socket> Listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return errno_status("accept");
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    // shutdown() first so a blocked accept() returns instead of
    // sleeping on a closed fd number that may be reused.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

}  // namespace vlsip::net
