// HubClient — the thin client library of the distributed farm.
//
// A synchronous, single-threaded view of a hub connection: connect()
// performs the Hello/HelloAck version negotiation, submit() streams
// jobs (client-scoped seq numbers), collect() blocks until the next N
// results arrive. Control verbs (drain_worker, metrics, shutdown) ride
// the same connection; because the hub interleaves job results with
// control replies, the client pumps frames into small pending buffers
// so callers can issue control requests while results are in flight.
//
// This is deliberately the whole API surface a tool needs — vlsipc's
// submit verb and the end-to-end tests drive the farm exclusively
// through it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "scaling/job.hpp"

namespace vlsip::net {

class HubClient {
 public:
  struct Options {
    /// Hub address ("host:port" or "unix:/path").
    std::string hub;
    /// Display name sent in Hello (diagnostics only).
    std::string name = "client";
    std::size_t max_payload = kMaxFramePayload;
    /// Submission window: submit() blocks (pumping results into the
    /// collect() buffer) while this many submissions have no result
    /// yet. Bounds the hub-side backlog a single client can build —
    /// without it a manifest of N jobs streams all N up front. 0 =
    /// unbounded (the pre-window behaviour).
    std::size_t max_in_flight = 0;
  };

  HubClient() = default;
  HubClient(HubClient&&) = default;
  HubClient& operator=(HubClient&&) = default;

  /// Connects and negotiates. kVersionMismatch if the hub rejects this
  /// build's protocol version.
  static StatusOr<HubClient> connect(Options options);

  bool connected() const { return sock_.valid(); }
  std::uint64_t client_id() const { return client_id_; }
  std::uint32_t proto_version() const { return proto_version_; }

  /// Streams one job to the hub. Returns the seq assigned to it (the
  /// key results come back under). With Options::max_in_flight set,
  /// blocks first until the in-flight count is below the window,
  /// buffering any results that arrive meanwhile for collect().
  StatusOr<std::uint64_t> submit(const scaling::Job& job);

  /// Submissions whose result has not yet been received (buffered
  /// results count as received).
  std::size_t in_flight() const {
    return static_cast<std::size_t>(next_seq_ - collected_) -
           pending_results_.size();
  }

  /// Blocks until `n` more results have arrived (any still buffered
  /// from a control-verb pump count first). Results are in arrival
  /// order; .id is the submit seq.
  StatusOr<std::vector<JobResultMsg>> collect(std::size_t n);

  /// Asks the hub to drain worker `worker_id` (checkpoint + migrate
  /// its unstarted jobs to a peer). Fire-and-forget: the migrated
  /// jobs' results arrive through collect() as usual.
  Status drain_worker(std::uint64_t worker_id);

  /// Fetches the hub's metrics JSON document (blocks; job results
  /// arriving meanwhile are buffered for collect()).
  StatusOr<std::string> metrics_json();

  /// Orderly farm shutdown: hub stops workers and exits.
  Status shutdown_hub();

  /// Graceful close of this connection only.
  void goodbye();

 private:
  /// Reads one frame and files it (result -> buffer, metrics -> slot).
  Status pump();

  Socket sock_;
  std::size_t max_payload_ = kMaxFramePayload;
  std::size_t max_in_flight_ = 0;
  std::uint64_t client_id_ = 0;
  std::uint32_t proto_version_ = kProtoVersion;
  std::uint64_t next_seq_ = 0;
  /// Results handed out via collect() or buffered in pending_results_.
  std::uint64_t collected_ = 0;
  std::deque<JobResultMsg> pending_results_;
  std::optional<std::string> pending_metrics_;
};

}  // namespace vlsip::net
