// A supervisor-orchestrated task graph: a three-stage analytics
// pipeline (generate -> parallel map on two processors -> reduce) with
// a conditional alert stage that only materialises when the reduction
// crosses a threshold — fig. 7's pattern generalised to an arbitrary
// DAG, scheduled over the chip by the supervisor processor of §3.3.
//
//   $ ./build/examples/task_pipeline [threshold]
#include <cstdio>
#include <cstdlib>

#include "lang/compiler.hpp"
#include "noc/noc_fabric.hpp"
#include "scaling/supervisor.hpp"
#include "topology/s_topology.hpp"

int main(int argc, char** argv) {
  using namespace vlsip;
  const std::int64_t threshold = argc > 1 ? std::atoll(argv[1]) : 50;

  topology::STopologyFabric fabric(8, 8, topology::ClusterSpec{8, 8, 1});
  noc::NocFabric noc(8, 8);
  scaling::ScalingManager mgr(fabric, noc);
  scaling::Supervisor sup(mgr);

  // source: emits 8 samples.
  scaling::TaskSpec source;
  source.name = "source";
  source.program = lang::compile("input n\noutput v = iota(n) * 3\n");
  source.direct_inputs = {{"n", {arch::make_word_u(8)}}};
  source.expected_per_output = 8;
  sup.add_task(std::move(source));

  // Two mappers over disjoint halves of the stream (written to their
  // memory blocks by the supervisor's data edges).
  for (int m = 0; m < 2; ++m) {
    const std::string name = "map" + std::to_string(m);
    scaling::TaskSpec map;
    map.name = name;
    const int base = m * 4;
    std::string expr = "output s = ";
    for (int i = 0; i < 4; ++i) {
      expr += (i ? " + " : "") + std::string("load(") +
              std::to_string(base + i) + ") * load(" +
              std::to_string(base + i) + ")";
    }
    map.program = lang::compile(expr + "\n");
    map.clusters = 2;
    sup.add_task(std::move(map));
    sup.add_edge({"source", "v", name, 0, std::nullopt, false});
  }

  // reduce: sum of both partial sums + threshold flag.
  scaling::TaskSpec reduce;
  reduce.name = "reduce";
  reduce.program = lang::compile(
      "total = load(0) + load(1)\n"
      "output total\n"
      "output alert = total > " + std::to_string(threshold) + "\n");
  sup.add_task(std::move(reduce));
  sup.add_edge({"map0", "s", "reduce", 0, std::nullopt, false});
  sup.add_edge({"map1", "s", "reduce", 1, std::nullopt, false});

  // alert: conditional — only configured and run when the flag is set.
  scaling::TaskSpec alert;
  alert.name = "alert";
  alert.program = lang::compile("output msg = load(0) * 1000 + 911\n");
  sup.add_task(std::move(alert));
  sup.add_edge({"reduce", "total", "alert", 0, "alert", false});

  const auto r = sup.run();

  std::printf("task pipeline over %zu tasks (%zu ran, %zu skipped), "
              "%llu total cycles (%llu in NoC hand-offs)\n\n",
              r.outcomes.size(), r.tasks_run, r.tasks_skipped,
              static_cast<unsigned long long>(r.total_cycles),
              static_cast<unsigned long long>(r.transfer_cycles));
  std::printf("%-8s %-6s %-10s %-10s %s\n", "task", "ran", "config",
              "exec", "result");
  for (const auto& o : r.outcomes) {
    std::printf("%-8s %-6s %-10llu %-10llu ", o.name.c_str(),
                o.ran ? "yes" : "no",
                static_cast<unsigned long long>(o.config_cycles),
                static_cast<unsigned long long>(o.exec_cycles));
    if (o.outputs.contains("total")) {
      std::printf("total=%lld",
                  static_cast<long long>(o.outputs.at("total")[0].i));
    } else if (o.outputs.contains("msg")) {
      std::printf("msg=%lld",
                  static_cast<long long>(o.outputs.at("msg")[0].i));
    } else if (o.outputs.contains("s")) {
      std::printf("partial=%lld",
                  static_cast<long long>(o.outputs.at("s")[0].i));
    }
    std::printf("\n");
  }
  // sum of (3i)^2 for i=0..7 = 9 * 140 = 1260.
  std::printf("\nexpected total = 1260; alert %s at threshold %lld.\n",
              r.outcome("alert").ran ? "FIRED" : "stayed cold",
              static_cast<long long>(threshold));
  std::printf("Try a threshold above 1260 to watch the alert task get "
              "skipped — it is never configured, never activated, and "
              "its clusters are never taken (fig. 7's conditional "
              "activation at graph scale).\n");
  return 0;
}
