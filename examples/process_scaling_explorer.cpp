// Cost-model explorer: price arbitrary AP compositions, die sizes and
// process nodes with the paper's §4 model — including what-if questions
// Table 4 does not answer (FPU-heavy tiles, bigger dies, later nodes).
//
//   $ ./build/examples/process_scaling_explorer [year] [die_cm2]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "costmodel/vlsi_model.hpp"

int main(int argc, char** argv) {
  using namespace vlsip;
  using namespace vlsip::cost;

  const int year = argc > 1 ? std::atoi(argv[1]) : 2012;
  const double die = argc > 2 ? std::atof(argv[2]) : 1.0;
  const auto node = extrapolate_node(year);

  std::printf("process node: %d (%.1f nm, rc = %.3f ns/mm^2)%s, die = "
              "%.2f cm^2\n\n",
              node.year, node.feature_nm, node.rc_ns_per_mm2,
              year > 2015 ? " [extrapolated beyond Table 4]" : "",
              die);

  // Sweep the physical:memory object ratio at a fixed 32-object tile —
  // the §4.1 knob: "we can coordinate the number of FPUs and memories,
  // and more GOPS is available if we optimize for more FPUs and less
  // memory blocks".
  AsciiTable out({"PO:MB per AP", "AP area [cm^2]", "#APs", "Delay [ns]",
                  "Peak GOPS", "Total FPUs", "Total 64KB SRAM [MB]"});
  struct Mix {
    int po, mb;
  };
  for (const auto mix : {Mix{8, 24}, Mix{12, 20}, Mix{16, 16}, Mix{20, 12},
                         Mix{24, 8}, Mix{28, 4}}) {
    ApComposition ap;
    ap.physical_objects = mix.po;
    ap.memory_objects = mix.mb;
    const auto row = evaluate_node(node, ap, die);
    out.add_row({std::to_string(mix.po) + ":" + std::to_string(mix.mb),
                 format_sig(row.ap_area_cm2, 4),
                 std::to_string(row.available_aps),
                 format_sig(row.wire_delay_ns, 3),
                 format_sig(row.peak_gops, 4),
                 std::to_string(row.available_aps * mix.po),
                 format_sig(row.available_aps * mix.mb * 64.0 / 1024.0,
                            3)});
  }
  std::printf("%s\n", out.render().c_str());

  // The paper's reference composition at this node.
  const auto ref = evaluate_node(node, ApComposition{}, die);
  std::printf("reference (16:16) at this node: %d APs, %.2f ns wire "
              "delay, %.0f GOPS\n",
              ref.available_aps, ref.wire_delay_ns, ref.peak_gops);
  std::printf("\nNote the trade-off: FPU-heavy tiles raise peak GOPS but "
              "shrink on-chip SRAM — the balance §4.1 leaves to the "
              "architect. Delay barely moves because the tile area (and "
              "thus the global wire) is held near-constant.\n");
  return 0;
}
