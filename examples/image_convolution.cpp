// Streaming 3x3 image convolution (edge detection) — the data-intensive
// workload class the paper's intro motivates, mapped onto a fused AP:
// the sequencer streams pixel indices, nine load objects fetch the
// neighbourhood from the banked memory blocks, and an adder tree applies
// the kernel. Addresses wrap modulo the image (toroidal border).
//
//   $ ./build/examples/image_convolution
#include <cstdio>
#include <vector>

#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"

namespace {

using namespace vlsip;

constexpr int kW = 8;
constexpr int kH = 8;

// Laplacian edge-detection kernel.
constexpr std::int64_t kKernel[3][3] = {
    {0, 1, 0},
    {1, -4, 1},
    {0, 1, 0},
};

std::vector<std::int64_t> host_reference(
    const std::vector<std::int64_t>& img) {
  std::vector<std::int64_t> out(kW * kH, 0);
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      std::int64_t acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          // Same wrap the datapath's modulo addressing produces.
          const int idx =
              (((y * kW + x) + dy * kW + dx) % (kW * kH) + kW * kH) %
              (kW * kH);
          acc += kKernel[dy + 1][dx + 1] * img[static_cast<std::size_t>(idx)];
        }
      }
      out[static_cast<std::size_t>(y * kW + x)] = acc;
    }
  }
  return out;
}

}  // namespace

int main() {
  // An image with a bright square in the middle.
  std::vector<std::int64_t> image(kW * kH, 10);
  for (int y = 2; y < 6; ++y) {
    for (int x = 2; x < 6; ++x) image[static_cast<std::size_t>(y * kW + x)] = 100;
  }

  // Datapath: pix = iota(W*H); for each tap, v = load((pix + off) mod N)
  // weighted into an adder chain.
  arch::DatapathBuilder b;
  const auto n = b.input("n");
  const auto pix = b.op(arch::Opcode::kIota, n, "pixels");
  const auto modn = b.constant_i(kW * kH, "N");
  arch::ObjectId acc = arch::kNoObject;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const auto weight = kKernel[dy + 1][dx + 1];
      if (weight == 0) continue;
      const auto off = b.constant_i(dy * kW + dx + kW * kH);
      const auto addr0 = b.op(arch::Opcode::kIAdd, pix, off);
      const auto addr = b.op(arch::Opcode::kIRem, addr0, modn);
      const auto v = b.op(arch::Opcode::kLoad, addr);
      const auto weighted =
          weight == 1 ? v
                      : b.op(arch::Opcode::kIMul, v,
                             b.constant_i(weight));
      acc = acc == arch::kNoObject
                ? weighted
                : b.op(arch::Opcode::kIAdd, acc, weighted);
    }
  }
  b.output("edge", acc);
  auto program = std::move(b).build();

  core::VlsiProcessor chip;
  const auto per_cluster =
      static_cast<std::size_t>(chip.fabric().cluster_spec().stack_capacity());
  const auto clusters =
      (program.object_count() + per_cluster - 1) / per_cluster;
  const auto proc = chip.fuse(clusters);
  auto& ap = chip.manager().processor(proc);

  std::vector<arch::Word> img_words;
  img_words.reserve(image.size());
  for (const auto v : image) img_words.push_back(arch::make_word_i(v));
  ap.memory().fill(0, img_words);

  ap.configure(program);
  ap.feed("n", arch::make_word_u(kW * kH));
  chip.activate(proc);
  const auto exec = ap.run(kW * kH, 1u << 22);
  if (!exec.completed) {
    std::printf("convolution did not complete!\n");
    return 1;
  }

  const auto expected = host_reference(image);
  const auto& out = ap.output("edge");
  int mismatches = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (out[i].i != expected[i]) ++mismatches;
  }

  std::printf("3x3 Laplacian over a %dx%d image on a %zu-cluster AP "
              "(%zu objects)\n",
              kW, kH, clusters, program.object_count());
  std::printf("cycles: %llu (%.2f per pixel), memory ops: %llu, bank "
              "conflicts: %llu\n",
              static_cast<unsigned long long>(exec.cycles),
              static_cast<double>(exec.cycles) / (kW * kH),
              static_cast<unsigned long long>(exec.mem_ops),
              static_cast<unsigned long long>(ap.memory().bank_conflicts()));
  std::printf("verification vs host reference: %s (%d mismatches)\n\n",
              mismatches == 0 ? "EXACT" : "FAILED", mismatches);

  std::printf("edge magnitude map (|.|>40 marked):\n");
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      const auto v = out[static_cast<std::size_t>(y * kW + x)].i;
      std::printf("%c", (v > 40 || v < -40) ? '#' : '.');
    }
    std::printf("\n");
  }
  std::printf("\nThe square's outline lights up — computed entirely by "
              "chained objects streaming pixel indices, with the image "
              "interleaved across the AP's memory banks.\n");
  return 0;
}
