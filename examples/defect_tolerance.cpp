// Defect tolerance (paper §1, fourth benefit): "when four APs are used on
// chip and they can be fused into one large-scale processor ... When a
// second AP fails, the first processor can become a small-scale
// processor, the third and fourth processors can be fused into a
// medium-scale processor or split into two small-scale processors."
//
// This example reproduces that scenario literally and keeps computing
// through the failures.
//
//   $ ./build/examples/defect_tolerance
#include <cstdio>

#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"

namespace {

using namespace vlsip;

long long run_add(core::VlsiProcessor& chip, scaling::ProcId p,
                  std::int64_t x) {
  arch::DatapathBuilder b;
  const auto in = b.input("in");
  b.output("out", b.op(arch::Opcode::kIAdd, in, b.constant_i(100)));
  const auto r = chip.run_program(p, std::move(b).build(),
                                  {{"in", {arch::make_word_i(x)}}}, 1,
                                  100000);
  return r.outputs.at("out")[0].i;
}

}  // namespace

int main() {
  core::VlsiProcessor chip;
  auto& mgr = chip.manager();

  // Fuse four clusters into one large-scale processor.
  const auto big = chip.fuse(4);
  std::printf("fused one large-scale processor over 4 clusters "
              "(capacity %d)\n",
              mgr.processor(big).capacity());
  std::printf("it computes: 5 + 100 = %lld\n", run_add(chip, big, 5));

  // The "second AP" (second cluster of the fused region) fails.
  const auto path = mgr.regions().region(mgr.info(big).region).path;
  const auto failing = path[1];
  std::printf("\n*** cluster %u (position 2 of 4) develops a defect ***\n",
              failing);
  const auto survivor = mgr.mark_defective(failing);

  // The first processor became a small-scale (1-cluster) processor.
  std::printf("processor %u survives with %zu cluster(s) — "
              "\"the first processor can become a small-scale "
              "processor\"\n",
              survivor, mgr.cluster_count(survivor));
  std::printf("it still computes: 7 + 100 = %lld\n",
              run_add(chip, survivor, 7));

  // The third and fourth clusters were freed; re-fuse them into a
  // medium-scale processor...
  const auto medium = chip.fuse_path({path[2], path[3]});
  std::printf("\nclusters 3+4 re-fused into a medium-scale processor %u "
              "(capacity %d)\n",
              medium, mgr.processor(medium).capacity());
  std::printf("it computes: 9 + 100 = %lld\n", run_add(chip, medium, 9));

  // ...or split them into two small-scale processors instead.
  chip.release(medium);
  const auto small_a = chip.fuse_path({path[2]});
  const auto small_b = chip.fuse_path({path[3]});
  std::printf("\n...or split into two small-scale processors %u and %u\n",
              small_a, small_b);
  std::printf("they compute: 11 + 100 = %lld, 13 + 100 = %lld\n",
              run_add(chip, small_a, 11), run_add(chip, small_b, 13));

  // The defective cluster is quarantined forever.
  std::printf("\ndefective cluster %u is quarantined: is_defective=%s, "
              "free clusters exclude it (%zu of %zu free)\n",
              failing, mgr.is_defective(failing) ? "true" : "false",
              chip.free_clusters(), chip.total_clusters());
  std::printf("\"Through the VLSI processor architecture, the failing AP "
              "can be removed from the system.\"\n");
  return 0;
}
