// Vector reduction (dot product) using the sequencer object — the
// hardware-loop role Table 2 assigns to the memory block's ALU-II and
// instruction register: a kIota object emits the loop indices, load
// objects stream both vectors out of the memory block, and a feedback
// accumulator (a placeholder buffer closing a dataflow loop) reduces the
// products without any instruction fetch.
//
//   $ ./build/examples/vector_reduction [n]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"

int main(int argc, char** argv) {
  using namespace vlsip;
  const std::uint64_t n =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 16;

  core::VlsiProcessor chip;
  const auto proc = chip.fuse(2);
  auto& ap = chip.manager().processor(proc);

  // Vectors a and b live in the AP's memory block: a at 0, b at 1000.
  std::vector<arch::Word> a, b;
  double expected = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double av = 0.5 + static_cast<double>(i);
    const double bv = 2.0 - 0.1 * static_cast<double>(i);
    a.push_back(arch::make_word_f(av));
    b.push_back(arch::make_word_f(bv));
    expected += av * bv;
  }
  ap.memory().fill(0, a);
  ap.memory().fill(1000, b);

  // The datapath: iota(n) -> addresses -> loads -> multiply ->
  // feedback accumulate -> sink (collects every partial sum).
  arch::DatapathBuilder bld;
  const auto count = bld.input("n");
  const auto idx = bld.op(arch::Opcode::kIota, count, "loop");
  const auto a_addr =
      bld.op(arch::Opcode::kIAdd, idx, bld.constant_i(0, "baseA"), "a+i");
  const auto b_addr =
      bld.op(arch::Opcode::kIAdd, idx, bld.constant_i(1000, "baseB"), "b+i");
  const auto av = bld.op(arch::Opcode::kLoad, a_addr, "a[i]");
  const auto bv = bld.op(arch::Opcode::kLoad, b_addr, "b[i]");
  const auto prod = bld.op(arch::Opcode::kFMul, av, bv, "a*b");
  // acc = prod + delay(acc), delay initialised to 0.0 — the feedback
  // loop a conventional processor would express as a loop-carried
  // dependency.
  const auto acc_delay = bld.placeholder("acc_z");
  bld.set_initial_f(acc_delay, 0.0);
  const auto acc = bld.op(arch::Opcode::kFAdd, prod, acc_delay, "acc");
  bld.bind(acc_delay, acc);
  bld.output("partial", acc);
  auto program = std::move(bld).build();

  ap.configure(program);
  ap.feed("n", arch::make_word_u(n));
  chip.activate(proc);
  const auto exec = ap.run(n, 1000000);
  if (!exec.completed) {
    std::printf("run did not complete!\n");
    return 1;
  }

  const auto& partials = ap.output("partial");
  std::printf("dot product of %llu-element vectors on one fused AP\n",
              static_cast<unsigned long long>(n));
  std::printf("  cycles: %llu (%.2f per element), ops: %llu int, %llu "
              "float, %llu memory\n",
              static_cast<unsigned long long>(exec.cycles),
              static_cast<double>(exec.cycles) / static_cast<double>(n),
              static_cast<unsigned long long>(exec.int_ops),
              static_cast<unsigned long long>(exec.float_ops),
              static_cast<unsigned long long>(exec.mem_ops));
  std::printf("  result: %.4f (expected %.4f) — %s\n",
              partials.back().f, expected,
              partials.back().f == expected ? "EXACT" : "mismatch");
  std::printf("  running partials: ");
  for (std::size_t i = 0; i < partials.size() && i < 6; ++i) {
    std::printf("%.2f ", partials[i].f);
  }
  std::printf("...\n");
  std::printf("No instruction was fetched during the loop: the sequencer "
              "object drives the indices and the dependency graph does "
              "the rest.\n");
  return 0;
}
