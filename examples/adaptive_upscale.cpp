// Processor optimization on demand (§1, first benefit): "the scale of
// the processor is dynamically variable, looking like up or down scale
// on demand".
//
// A datapath larger than the fused processor's capacity still *works*
// (virtual hardware swaps objects in and out), but every swap costs
// library loads and stack shifts. This example runs the same workload at
// increasing scales, watches the fault rate fall, and up-scales until
// the datapath is fault-free — the feedback loop an application designer
// (or a runtime) would drive.
//
//   $ ./build/examples/adaptive_upscale
#include <cstdio>

#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"

int main() {
  using namespace vlsip;

  core::ChipConfig cfg;
  cfg.cluster = topology::ClusterSpec{8, 8, 1};  // small clusters: C=8 each
  core::VlsiProcessor chip(cfg);
  auto& mgr = chip.manager();

  // A 12-stage arithmetic pipeline: 26 objects.
  const auto program = arch::linear_pipeline_program(12);
  std::printf("workload: %zu objects; cluster stack = %d objects\n\n",
              program.object_count(),
              cfg.cluster.stack_capacity());

  auto proc = chip.fuse(1);
  std::printf("%-10s %-10s %-10s %-12s %-12s %s\n", "clusters", "C",
              "faults", "fault cyc", "exec cyc", "result");

  for (int round = 0; round < 5; ++round) {
    auto& ap = mgr.processor(proc);
    ap.configure(program);
    ap.feed("in", arch::make_word_i(3));
    const auto exec = ap.run(1, 2000000);
    const auto out = ap.output("out");
    std::printf("%-10zu %-10d %-10llu %-12llu %-12llu %lld\n",
                mgr.cluster_count(proc), ap.capacity(),
                static_cast<unsigned long long>(exec.faults),
                static_cast<unsigned long long>(exec.fault_cycles),
                static_cast<unsigned long long>(exec.cycles),
                out.empty() ? -1 : static_cast<long long>(out[0].i));

    if (exec.faults == 0) {
      std::printf("\nfault-free at %zu clusters — the datapath now fits "
                  "capacity C; stopping the up-scale loop.\n",
                  mgr.cluster_count(proc));
      break;
    }
    // Up-scale by one cluster (must be inactive; run_program-style
    // activation was not used here, so the processor already is).
    if (!mgr.upscale(proc, 1)) {
      std::printf("no free neighbouring cluster to grow into!\n");
      break;
    }
  }

  std::printf("\nThe same binary (object library + configuration stream) "
              "ran at every scale — no recompilation, no repartitioning; "
              "only the amount of fused resources changed (§1: the model "
              "\"does not require the application partitioning\").\n");
  return 0;
}
