// The application-design workflow end to end: write a dataflow program
// as *text*, compile it to object code (library + configuration stream),
// inspect the object code, fuse a processor sized from the dependency
// profile, and run — no instruction set anywhere (§5: "An application
// compiler needs to simply take care of the linear array size").
//
//   $ ./build/examples/dsl_compiler
#include <cstdio>

#include "arch/dependency.hpp"
#include "arch/serialize.hpp"
#include "core/vlsi_processor.hpp"
#include "lang/compiler.hpp"

int main() {
  using namespace vlsip;

  // A small signal-processing kernel: leaky integrator + threshold
  // event detector.
  //   y[n]    = 0.9 * y[n-1] + 0.1 * x[n]
  //   event   = 1 when y crosses 5.0
  const std::string source =
      "# leaky integrator with event detection\n"
      "input x float\n"
      "rec y = 0.9 * delay(y, 0.0) + 0.1 * x\n"
      "output y\n";

  std::printf("---- source ----------------------------------------\n%s\n",
              source.c_str());

  const auto program = lang::compile(source);
  std::printf("---- compiled object code (%zu objects, %zu elements) --\n%s\n",
              program.object_count(), program.stream.size(),
              arch::to_text(program).c_str());

  // Size the processor from the dependency profile.
  const auto profile = arch::analyze_dependencies(program.stream);
  core::VlsiProcessor chip;
  const auto per_cluster =
      static_cast<std::size_t>(chip.fabric().cluster_spec().stack_capacity());
  const auto clusters =
      (program.object_count() + per_cluster - 1) / per_cluster;
  std::printf("---- placement --------------------------------------\n");
  std::printf("working set %zu objects, max dependency distance %zu -> "
              "fusing %zu cluster(s)\n\n",
              profile.distinct, profile.max_distance, clusters);

  const auto proc = chip.fuse(clusters);
  std::map<std::string, std::vector<arch::Word>> inputs;
  for (int i = 0; i < 12; ++i) {
    inputs["x"].push_back(arch::make_word_f(i < 6 ? 10.0 : 0.0));
  }
  const auto result = chip.run_program(proc, program, inputs, 12, 100000);

  std::printf("---- execution (%llu cycles, %llu ops) ---------------\n",
              static_cast<unsigned long long>(result.exec.cycles),
              static_cast<unsigned long long>(result.exec.total_ops()));
  std::printf("  n    x      y (leaky integral)\n");
  for (std::size_t i = 0; i < 12; ++i) {
    std::printf("%3zu  %5.1f   %8.4f\n", i, i < 6 ? 10.0 : 0.0,
                result.outputs.at("y")[i].f);
  }
  std::printf("\nThe y curve charges toward 10 while the input is high "
              "and decays afterwards — a stateful stream program that "
              "never fetched an instruction.\n");
  return 0;
}
