// Streaming example: a 5-tap FIR low-pass filter as a streaming datapath.
//
// Streaming is the paper's motivating workload class ("a streaming
// application with a large (data) dependency will probably require more
// resources to configure its datapath", §1). A streaming datapath must
// fit entirely within the processor's capacity C — swapping part of a
// stream out is not allowed (§2.5) — so the application first asks for
// enough clusters, which is exactly the processor-optimization workflow
// the paper proposes.
//
//   $ ./build/examples/streaming_fir
#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/datapath.hpp"
#include "arch/dependency.hpp"
#include "core/vlsi_processor.hpp"

int main() {
  using namespace vlsip;

  // A 5-tap moving-average FIR.
  const std::vector<double> taps = {0.2, 0.2, 0.2, 0.2, 0.2};
  const auto program = arch::fir_program(taps);
  std::printf("FIR datapath: %zu objects (%zu-tap)\n",
              program.object_count(), taps.size());

  // Ask the dependency profile how much capacity the stream needs.
  const auto profile = arch::analyze_dependencies(program.stream);
  std::printf("dependency profile: %zu distinct objects, max dependency "
              "distance %zu\n",
              profile.distinct, profile.max_distance);

  core::VlsiProcessor chip;
  // The application designer "knows the optimal amount of resources":
  // round the object count up to whole clusters.
  const auto per_cluster =
      static_cast<std::size_t>(chip.fabric().cluster_spec().stack_capacity());
  const auto clusters =
      (program.object_count() + per_cluster - 1) / per_cluster;
  const auto proc = chip.fuse(clusters);
  std::printf("fused %zu cluster(s): capacity C = %d >= %zu objects -> "
              "streaming allowed\n",
              clusters, chip.manager().processor(proc).capacity(),
              program.object_count());

  auto& ap = chip.manager().processor(proc);
  ap.configure(program);
  if (!ap.fits_streaming(program)) {
    std::printf("datapath does not fit for streaming!\n");
    return 1;
  }

  // Stream a noisy ramp through the filter.
  const int samples = 24;
  for (int i = 0; i < samples; ++i) {
    const double x = i + ((i % 2 == 0) ? 0.5 : -0.5);  // ramp + noise
    ap.feed("x", arch::make_word_f(x));
  }
  chip.activate(proc);
  const auto exec = ap.run_streaming(samples, 1000000);
  std::printf("streamed %d samples in %llu cycles (%.2f cycles/sample), "
              "%llu FP operations, faults = %llu (streaming forbids them)\n",
              samples, static_cast<unsigned long long>(exec.cycles),
              static_cast<double>(exec.cycles) / samples,
              static_cast<unsigned long long>(exec.float_ops),
              static_cast<unsigned long long>(exec.faults));

  std::printf("  n   x(in)    y(filtered)\n");
  const auto& y = ap.output("y");
  for (int i = 0; i < samples; ++i) {
    const double x = i + ((i % 2 == 0) ? 0.5 : -0.5);
    std::printf("%3d  %6.2f   %8.4f\n", i, x, y[static_cast<std::size_t>(i)].f);
  }
  std::printf("The moving average converges to the ramp (noise removed) "
              "once the delay line fills.\n");
  return 0;
}
