// Control flow on the VLSI processor, two ways (paper §1 "guard
// data-intensive datapaths from control-intensive datapaths" and fig. 7):
//
//  A. *Speculative dataflow on one AP*: both arms of the conditional
//     execute; gates forward only the taken arm. No pipeline flush, at
//     the cost of executing both arms.
//  B. *Isolated basic blocks across APs*: each arm is its own processor;
//     the condition block activates only the taken arm through an
//     inactive-state memory write. No wasted execution, at the cost of
//     inter-processor communication.
//
//   $ ./build/examples/conditional_blocks
#include <cstdio>

#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"

namespace {

using namespace vlsip;

arch::Program condition_block() {
  arch::DatapathBuilder b;
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.output("cond", b.op(arch::Opcode::kCmpGt, x, y));
  return std::move(b).build();
}

arch::Program arm_block(std::int64_t k) {
  arch::DatapathBuilder b;
  const auto v = b.op(arch::Opcode::kLoad, b.constant_i(0), "operand");
  b.output("r", b.op(arch::Opcode::kIAdd, v, b.constant_i(k)));
  return std::move(b).build();
}

}  // namespace

int main() {
  core::VlsiProcessor chip;

  // --- A: speculative dataflow, one processor -------------------------
  std::printf("A. speculative dataflow (one AP, both arms execute)\n");
  const auto solo = chip.fuse(1);
  const auto spec = chip.run_program(
      solo, arch::conditional_example_program(),
      {{"x", {arch::make_word_i(9), arch::make_word_i(1)}},
       {"y", {arch::make_word_i(2), arch::make_word_i(7)}}},
      2, 100000);
  std::printf("   z(9,2) = %lld, z(1,7) = %lld; %llu total ops "
              "(both arms fired), %llu cycles\n",
              static_cast<long long>(spec.outputs.at("z")[0].i),
              static_cast<long long>(spec.outputs.at("z")[1].i),
              static_cast<unsigned long long>(spec.exec.total_ops()),
              static_cast<unsigned long long>(spec.exec.cycles));

  // --- B: isolated basic blocks, three processors -----------------------
  std::printf("B. isolated basic blocks (3 APs, only the taken arm runs)\n");
  const auto p_cond = chip.fuse(1);
  const auto p_true = chip.fuse(1);
  const auto p_false = chip.fuse(1);
  auto& mgr = chip.manager();

  auto run_case = [&](std::int64_t x, std::int64_t y) {
    const auto rc = chip.run_program(
        p_cond, condition_block(),
        {{"x", {arch::make_word_i(x)}}, {"y", {arch::make_word_i(y)}}}, 1,
        100000);
    const bool taken = rc.outputs.at("cond")[0].u != 0;
    const auto arm = taken ? p_true : p_false;
    // Fig. 7 d: write the operand into the (inactive) arm's memory
    // block, then activate it.
    mgr.send(p_cond, arm, {static_cast<std::uint64_t>(taken ? x : y)}, 0);
    const auto ra =
        chip.run_program(arm, arm_block(taken ? 1 : 2), {}, 1, 100000);
    std::printf("   x=%lld y=%lld -> %s arm -> z = %lld "
                "(%llu arm ops only)\n",
                static_cast<long long>(x), static_cast<long long>(y),
                taken ? "true" : "false",
                static_cast<long long>(ra.outputs.at("r")[0].i),
                static_cast<unsigned long long>(ra.exec.total_ops()));
  };
  run_case(9, 2);
  run_case(1, 7);

  std::printf("Both strategies avoid the pipeline flush a conventional "
              "processor would pay: \"the control-flow breaks a regularly "
              "reconfiguring datapath\" only if the blocks share one AP's "
              "configuration stream.\n");
  return 0;
}
