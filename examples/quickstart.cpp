// Quickstart: fuse clusters into an adaptive processor, build a datapath
// with the DatapathBuilder, configure it through the 5-stage pipeline,
// execute it as token dataflow, then split the processor again.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "arch/datapath.hpp"
#include "core/vlsi_processor.hpp"

int main() {
  using namespace vlsip;

  // 1. A chip: 8x8 clusters, each the paper's minimum AP
  //    (16 physical objects + 16 memory objects).
  core::VlsiProcessor chip;
  std::printf("chip: %zu clusters, all in the release state\n",
              chip.total_clusters());

  // 2. Fuse four clusters into one adaptive processor. The switches are
  //    programmed by wormhole-routed configuration packets; the fused
  //    region is one linear stack of capacity 4 x 16 = 64 objects.
  const auto proc = chip.fuse(4);
  if (proc == scaling::kNoProc) {
    std::printf("allocation failed\n");
    return 1;
  }
  std::printf("fused processor %u over 4 clusters (capacity C = %d)\n",
              proc, chip.manager().processor(proc).capacity());

  // 3. Describe an application datapath: out = (in + 10) * 3.
  //    No instruction set — just objects and dependencies.
  arch::DatapathBuilder b;
  const auto in = b.input("in");
  const auto plus = b.op(arch::Opcode::kIAdd, in, b.constant_i(10), "add10");
  const auto times = b.op(arch::Opcode::kIMul, plus, b.constant_i(3), "x3");
  b.output("out", times);
  const auto program = std::move(b).build();

  // 4. Configure and run with a stream of inputs.
  const auto result = chip.run_program(
      proc, program,
      {{"in", {arch::make_word_i(1), arch::make_word_i(2),
               arch::make_word_i(3)}}},
      /*expected_per_output=*/3, /*max_cycles=*/100000);

  std::printf("configuration: %llu cycles, %llu object requests "
              "(%llu misses -> library loads)\n",
              static_cast<unsigned long long>(result.config.cycles),
              static_cast<unsigned long long>(result.config.object_requests),
              static_cast<unsigned long long>(result.config.misses));
  std::printf("execution: %llu cycles, %llu operations fired\n",
              static_cast<unsigned long long>(result.exec.cycles),
              static_cast<unsigned long long>(result.exec.total_ops()));
  for (const auto& w : result.outputs.at("out")) {
    std::printf("  out = %lld\n", static_cast<long long>(w.i));
  }

  // 5. Release: clusters return to the pool for the next application.
  chip.release(proc);
  std::printf("released; %zu clusters free again\n", chip.free_clusters());
  return 0;
}
